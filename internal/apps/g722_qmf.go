package apps

import (
	"mmxdsp/internal/asm"
	"mmxdsp/internal/emit"
	"mmxdsp/internal/isa"
)

// emitQmfAnalysis emits the transmit-QMF sums for the history in "xenc":
// leaves sumodd in esi and sumeven in edi. The scalar variant multiplies
// inline with imul; the MMX variant packs the 32-bit history into the
// library's 16-bit format and calls nsDotProd16 twice, paying the
// formatting plus a defensive emms — the per-sample overhead of §4.2.
func emitQmfAnalysis(b *asm.Builder, useMMX bool, xsym string) {
	if !useMMX {
		b.I(isa.MOV, asm.R(isa.ESI), asm.Imm(0))
		b.I(isa.MOV, asm.R(isa.EDI), asm.Imm(0))
		for i := 0; i < 12; i++ {
			b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, xsym, int32(8*i)))
			b.I(isa.IMUL, asm.R(isa.EAX), asm.Sym(isa.SizeD, "qmfco", int32(4*i)))
			b.I(isa.ADD, asm.R(isa.ESI), asm.R(isa.EAX))
			b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, xsym, int32(8*i+4)))
			b.I(isa.IMUL, asm.R(isa.EAX), asm.Sym(isa.SizeD, "qmfco", int32(4*(11-i))))
			b.I(isa.ADD, asm.R(isa.EDI), asm.R(isa.EAX))
		}
		return
	}
	// Pack the even/odd 32-bit history taps into contiguous 16-bit library
	// buffers (values are sample-sized, so the truncation is lossless).
	for i := 0; i < 12; i++ {
		b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, xsym, int32(8*i)))
		b.I(isa.MOV, asm.Sym(isa.SizeW, "evenw", int32(2*i)), asm.R(isa.EAX))
		b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, xsym, int32(8*i+4)))
		b.I(isa.MOV, asm.Sym(isa.SizeW, "oddw", int32(2*i)), asm.R(isa.EAX))
	}
	b.I(isa.PUSH, asm.R(isa.EBP))
	emit.Call(b, "nsDotProd16", asm.ImmSym("evenw", 0), asm.ImmSym("qmfw", 0), asm.Imm(16))
	b.I(isa.MOV, asm.Sym(isa.SizeD, "sumodd", 0), asm.R(isa.EAX))
	emit.Call(b, "nsDotProd16", asm.ImmSym("oddw", 0), asm.ImmSym("qmfwr", 0), asm.Imm(16))
	b.I(isa.EMMS) // the library manual says: empty MMX state after use
	b.I(isa.POP, asm.R(isa.EBP))
	b.I(isa.MOV, asm.R(isa.EDI), asm.R(isa.EAX)) // sumeven
	b.I(isa.MOV, asm.R(isa.ESI), asm.Sym(isa.SizeD, "sumodd", 0))
}

// emitShiftX emits the 24-entry history shift x[i] = x[i+2].
func emitShiftX(b *asm.Builder, xsym, tag string) {
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label(tag)
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, xsym, isa.ECX, 4, 8))
	b.I(isa.MOV, asm.SymIdx(isa.SizeD, xsym, isa.ECX, 4, 0), asm.R(isa.EAX))
	b.I(isa.INC, asm.R(isa.ECX))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(22))
	b.J(isa.JL, tag)
}

// emitEncodePair emits encode_pair(pairIdx) -> al = codeword.
func emitEncodePair(b *asm.Builder, useMMX bool) {
	e := g722Op{b}
	b.Proc("encode_pair")
	b.I(isa.MOV, asm.R(isa.EBX), emit.Arg(0)) // pair index

	// Transmit QMF: shift in the two new samples, compute sub-bands.
	emitShiftX(b, "xenc", "ep.shift")
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "pcm", isa.EBX, 4, 0))
	e.stEax(asm.Sym(isa.SizeD, "xenc", 22*4))
	b.I(isa.MOVSXW, asm.R(isa.EAX), asm.SymIdx(isa.SizeW, "pcm", isa.EBX, 4, 2))
	e.stEax(asm.Sym(isa.SizeD, "xenc", 23*4))
	emitQmfAnalysis(b, useMMX, "xenc")
	// xlow = (sumeven+sumodd)>>14, xhigh = (sumeven-sumodd)>>14.
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EDI))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.ESI))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(14))
	e.stEax(e.cell("xlow"))
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EDI))
	b.I(isa.SUB, asm.R(isa.EAX), asm.R(isa.ESI))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(14))
	e.stEax(e.cell("xhigh"))

	// --- Lower band: 6-bit ADPCM.
	b.I(isa.MOV, asm.R(isa.EBP), asm.ImmSym("encL", 0))
	e.ld(e.cell("xlow"))
	b.I(isa.SUB, asm.R(isa.EAX), st(gS))
	e.sat() // el
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.PUSH, asm.R(isa.EAX)) // save el
	b.I(isa.TEST, asm.R(isa.ECX), asm.R(isa.ECX))
	b.J(isa.JNS, "ep.elpos")
	b.I(isa.NOT, asm.R(isa.ECX)) // -(el+1) == ^el
	b.Label("ep.elpos")
	// Quantizer search: smallest i in [1,30) with wd < (q6[i]*det)>>12.
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(1))
	b.Label("ep.search")
	b.I(isa.CMP, asm.R(isa.EDX), asm.Imm(30))
	b.J(isa.JGE, "ep.found")
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "q6", isa.EDX, 4, 0))
	b.I(isa.IMUL, asm.R(isa.EAX), st(gDET))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(12))
	b.I(isa.CMP, asm.R(isa.ECX), asm.R(isa.EAX))
	b.J(isa.JL, "ep.found")
	b.I(isa.INC, asm.R(isa.EDX))
	b.J(isa.JMP, "ep.search")
	b.Label("ep.found")
	// ilow = el < 0 ? iln[i] : ilp[i]  (el on the stack).
	b.I(isa.POP, asm.R(isa.EAX))
	b.I(isa.TEST, asm.R(isa.EAX), asm.R(isa.EAX))
	b.J(isa.JS, "ep.useiln")
	b.I(isa.MOV, asm.R(isa.EBX), asm.SymIdx(isa.SizeD, "ilp", isa.EDX, 4, 0))
	b.J(isa.JMP, "ep.gotil")
	b.Label("ep.useiln")
	b.I(isa.MOV, asm.R(isa.EBX), asm.SymIdx(isa.SizeD, "iln", isa.EDX, 4, 0))
	b.Label("ep.gotil")
	// dlow = (det * qm4[ilow>>2]) >> 15.
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EBX))
	b.I(isa.SAR, asm.R(isa.ECX), asm.Imm(2))
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "qm4", isa.ECX, 4, 0))
	b.I(isa.IMUL, asm.R(isa.EAX), st(gDET))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	e.stEax(e.cell("dval"))
	// Scale and predictor updates (preserve ilow in ebx across calls via
	// the stack: all registers are caller-saved).
	b.I(isa.PUSH, asm.R(isa.EBX))
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBX))
	b.Call("logscl")
	b.Call("block4")
	b.I(isa.POP, asm.R(isa.EBX))
	b.I(isa.PUSH, asm.R(isa.EBX)) // keep ilow for the final combine

	// --- Higher band: 2-bit ADPCM.
	b.I(isa.MOV, asm.R(isa.EBP), asm.ImmSym("encH", 0))
	e.ld(e.cell("xhigh"))
	b.I(isa.SUB, asm.R(isa.EAX), st(gS))
	e.sat() // eh
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EAX))
	b.I(isa.PUSH, asm.R(isa.EAX))
	b.I(isa.TEST, asm.R(isa.ECX), asm.R(isa.ECX))
	b.J(isa.JNS, "ep.ehpos")
	b.I(isa.NOT, asm.R(isa.ECX))
	b.Label("ep.ehpos")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(564))
	b.I(isa.IMUL, asm.R(isa.EAX), st(gDET))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(12))
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(1)) // mih
	b.I(isa.CMP, asm.R(isa.ECX), asm.R(isa.EAX))
	b.J(isa.JL, "ep.mih1")
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(2))
	b.Label("ep.mih1")
	b.I(isa.POP, asm.R(isa.EAX)) // eh
	b.I(isa.TEST, asm.R(isa.EAX), asm.R(isa.EAX))
	b.J(isa.JS, "ep.useihn")
	b.I(isa.MOV, asm.R(isa.EBX), asm.SymIdx(isa.SizeD, "ihp", isa.EDX, 4, 0))
	b.J(isa.JMP, "ep.gotih")
	b.Label("ep.useihn")
	b.I(isa.MOV, asm.R(isa.EBX), asm.SymIdx(isa.SizeD, "ihn", isa.EDX, 4, 0))
	b.Label("ep.gotih")
	// dhigh = (det * qm2[ihigh]) >> 15.
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "qm2", isa.EBX, 4, 0))
	b.I(isa.IMUL, asm.R(isa.EAX), st(gDET))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	e.stEax(e.cell("dval"))
	b.I(isa.PUSH, asm.R(isa.EBX))
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBX))
	b.Call("logsch")
	b.Call("block4")
	b.I(isa.POP, asm.R(isa.EBX)) // ihigh
	b.I(isa.POP, asm.R(isa.ECX)) // ilow
	b.I(isa.SHL, asm.R(isa.EBX), asm.Imm(6))
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBX))
	b.I(isa.OR, asm.R(isa.EAX), asm.R(isa.ECX))
	b.Ret()
}

// emitDecodeByte emits decode_byte(code, pairIdx): writes two samples to
// outpcm.
func emitDecodeByte(b *asm.Builder, useMMX bool) {
	e := g722Op{b}
	b.Proc("decode_byte")

	// --- Lower band reconstruction.
	b.I(isa.MOV, asm.R(isa.EBX), emit.Arg(0))
	b.I(isa.AND, asm.R(isa.EBX), asm.Imm(0x3F)) // ilow
	b.I(isa.MOV, asm.R(isa.EBP), asm.ImmSym("decL", 0))
	// Predictor path: dlowt = (det * qm4[ilow>>2]) >> 15.
	b.I(isa.MOV, asm.R(isa.ECX), asm.R(isa.EBX))
	b.I(isa.SAR, asm.R(isa.ECX), asm.Imm(2))
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "qm4", isa.ECX, 4, 0))
	b.I(isa.IMUL, asm.R(isa.EAX), st(gDET))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	e.stEax(e.cell("dval"))
	// Output path: rlow = clamp14(s + (det*qm6[ilow])>>15).
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "qm6", isa.EBX, 4, 0))
	b.I(isa.IMUL, asm.R(isa.EAX), st(gDET))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	b.I(isa.ADD, asm.R(isa.EAX), st(gS))
	e.sat()
	e.clampEax("db.rlow", -16384, 16383)
	e.stEax(e.cell("rlow"))
	b.I(isa.PUSH, asm.R(isa.EBX))
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBX))
	b.Call("logscl")
	b.Call("block4")
	b.I(isa.POP, asm.R(isa.EBX))

	// --- Higher band reconstruction.
	b.I(isa.MOV, asm.R(isa.EBX), emit.Arg(0))
	b.I(isa.SHR, asm.R(isa.EBX), asm.Imm(6))
	b.I(isa.AND, asm.R(isa.EBX), asm.Imm(3)) // ihigh
	b.I(isa.MOV, asm.R(isa.EBP), asm.ImmSym("decH", 0))
	b.I(isa.MOV, asm.R(isa.EAX), asm.SymIdx(isa.SizeD, "qm2", isa.EBX, 4, 0))
	b.I(isa.IMUL, asm.R(isa.EAX), st(gDET))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(15))
	e.stEax(e.cell("dval"))
	b.I(isa.ADD, asm.R(isa.EAX), st(gS))
	e.sat()
	e.clampEax("db.rhigh", -16384, 16383)
	e.stEax(e.cell("rhigh"))
	b.I(isa.PUSH, asm.R(isa.EBX))
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBX))
	b.Call("logsch")
	b.Call("block4")
	b.I(isa.POP, asm.R(isa.EBX))

	// --- Receive QMF.
	emitShiftX(b, "xdec", "db.shift")
	e.ld(e.cell("rlow"))
	b.I(isa.ADD, asm.R(isa.EAX), e.cell("rhigh"))
	e.stEax(asm.Sym(isa.SizeD, "xdec", 22*4))
	e.ld(e.cell("rlow"))
	b.I(isa.SUB, asm.R(isa.EAX), e.cell("rhigh"))
	e.stEax(asm.Sym(isa.SizeD, "xdec", 23*4))
	emitQmfAnalysis(b, useMMX, "xdec")
	// out0 = sat(sumeven>>11)... receive ordering: xout1 uses the odd
	// taps' accumulator (esi holds sum over x[2i]*coef[i] = "xout2").
	b.I(isa.MOV, asm.R(isa.EBX), emit.Arg(1)) // pair index
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EDI))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(11))
	e.sat()
	b.I(isa.MOV, asm.SymIdx(isa.SizeW, "outpcm", isa.EBX, 4, 0), asm.R(isa.EAX))
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.ESI))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(11))
	e.sat()
	b.I(isa.MOV, asm.SymIdx(isa.SizeW, "outpcm", isa.EBX, 4, 2), asm.R(isa.EAX))
	b.Ret()
}
