package isa

import (
	"strings"
	"testing"
)

func TestEveryOpcodeHasMetadata(t *testing.T) {
	for op := Op(1); op < opCount; op++ {
		if op.Name() == "" || strings.HasPrefix(op.Name(), "op(") {
			t.Errorf("opcode %d has no name", op)
		}
		if op.Class() == ClassBad {
			t.Errorf("opcode %s has no class", op)
		}
		if op.Latency() < 0 {
			t.Errorf("opcode %s has negative latency", op)
		}
		if !op.IsPseudo() && op.Latency() == 0 {
			t.Errorf("opcode %s has zero latency but is not pseudo", op)
		}
	}
}

func TestRegisterNamesAndPredicates(t *testing.T) {
	if EAX.String() != "eax" || MM3.String() != "mm3" || FP7.String() != "fp7" {
		t.Error("register names wrong")
	}
	if !EAX.IsGPR() || EAX.IsMMX() || EAX.IsFP() {
		t.Error("EAX predicates wrong")
	}
	if !MM0.IsMMX() || MM0.IsGPR() {
		t.Error("MM0 predicates wrong")
	}
	if !FP2.IsFP() || FP2.IsMMX() {
		t.Error("FP2 predicates wrong")
	}
	if MM5.MMXIndex() != 5 || FP4.FPIndex() != 4 || EDX.GPRIndex() != 3 {
		t.Error("register indices wrong")
	}
}

func TestMMXOpcodeCoverage(t *testing.T) {
	// All packed operation families must be present: moves(2) + pack(3) +
	// unpack(6) + add(7) + sub(7) + mul(3) + cmp(6) + logical(4) +
	// shift(8) + emms(1) = 47 distinct mnemonics (Intel's count of 57 is
	// at the encoding level, counting shift-by-imm and shift-by-reg forms
	// and both movd/movq directions separately).
	if got := MMXOpcodeCount(); got != 47 {
		t.Errorf("MMXOpcodeCount = %d, want 47", got)
	}
}

func TestMMXCategoryBuckets(t *testing.T) {
	cases := []struct {
		op   Op
		want MMXCategory
	}{
		{PACKSSWB, MMXPackUnpack}, {PUNPCKHBW, MMXPackUnpack},
		{PADDW, MMXArithmetic}, {PMADDWD, MMXArithmetic},
		{PAND, MMXArithmetic}, {PSRAW, MMXArithmetic}, {PCMPGTW, MMXArithmetic},
		{MOVQ, MMXMove}, {MOVD, MMXMove},
		{EMMS, MMXEmms},
		{MOV, NotMMX}, {IMUL, NotMMX}, {FADD, NotMMX},
	}
	for _, c := range cases {
		if got := c.op.Category(); got != c.want {
			t.Errorf("%s category = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestPaperLatencies(t *testing.T) {
	// These specific values are quoted by the paper and drive its analysis.
	if IMUL.Latency() != 10 {
		t.Errorf("imul latency = %d, want 10 (paper §4.1)", IMUL.Latency())
	}
	if PMADDWD.Latency() != 3 {
		t.Errorf("pmaddwd latency = %d, want 3 (paper §4.1)", PMADDWD.Latency())
	}
	if EMMS.Latency() != 50 {
		t.Errorf("emms latency = %d, want 50 (paper §3.1)", EMMS.Latency())
	}
}

func TestReferencesMemory(t *testing.T) {
	mem := Operand{Kind: KindMem, Reg: ESI, Size: SizeD}
	reg := Operand{Kind: KindReg, Reg: EAX}
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: MOV, A: reg, B: mem}, true},
		{Inst{Op: MOV, A: mem, B: reg}, true},
		{Inst{Op: MOV, A: reg, B: Operand{Kind: KindReg, Reg: EBX}}, false},
		{Inst{Op: LEA, A: reg, B: mem}, false},
		{Inst{Op: PUSH, A: reg}, true},
		{Inst{Op: POP, A: reg}, true},
		{Inst{Op: CALL}, true},
		{Inst{Op: RET}, true},
		{Inst{Op: PADDW, A: Operand{Kind: KindReg, Reg: MM0}, B: Operand{Kind: KindMem, Reg: ESI, Size: SizeQ}}, true},
	}
	for _, c := range cases {
		if got := c.in.ReferencesMemory(); got != c.want {
			t.Errorf("%s ReferencesMemory = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLoadStoreClassification(t *testing.T) {
	mem := Operand{Kind: KindMem, Reg: ESI, Size: SizeD}
	reg := Operand{Kind: KindReg, Reg: EAX}
	load := Inst{Op: MOV, A: reg, B: mem}
	if !load.IsLoad() || load.IsStore() {
		t.Error("mov reg, mem must be a load, not a store")
	}
	store := Inst{Op: MOV, A: mem, B: reg}
	if store.IsLoad() || !store.IsStore() {
		t.Error("mov mem, reg must be a store, not a load")
	}
	rmw := Inst{Op: ADD, A: mem, B: reg}
	if !rmw.IsLoad() || !rmw.IsStore() {
		t.Error("add mem, reg must be both load and store")
	}
	cmpm := Inst{Op: CMP, A: mem, B: reg}
	if cmpm.IsStore() {
		t.Error("cmp mem, reg must not be a store")
	}
}

func TestUopCounts(t *testing.T) {
	mem := Operand{Kind: KindMem, Reg: ESI, Size: SizeD}
	reg := Operand{Kind: KindReg, Reg: EAX}
	regB := Operand{Kind: KindReg, Reg: EBX}
	cases := []struct {
		in   Inst
		want int
	}{
		{Inst{Op: ADD, A: reg, B: regB}, 1},
		{Inst{Op: ADD, A: reg, B: mem}, 2},  // load + alu
		{Inst{Op: ADD, A: mem, B: regB}, 4}, // load + alu + sta + std
		{Inst{Op: MOV, A: reg, B: mem}, 2},  // mov base 1 + load... see below
		{Inst{Op: MOV, A: mem, B: regB}, 3}, // mov 1 + sta + std
		{Inst{Op: PUSH, A: reg}, 3},
		{Inst{Op: POP, A: reg}, 2},
		{Inst{Op: RET}, 4},
		{Inst{Op: PADDW, A: Operand{Kind: KindReg, Reg: MM0}, B: Operand{Kind: KindMem, Reg: ESI, Size: SizeQ}}, 2},
		{Inst{Op: NOP}, 0},
	}
	for _, c := range cases {
		if got := c.in.UopCount(); got != c.want {
			t.Errorf("%s UopCount = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRegsReadWritten(t *testing.T) {
	in := Inst{
		Op: ADD,
		A:  Operand{Kind: KindReg, Reg: EAX},
		B:  Operand{Kind: KindMem, Reg: ESI, Index: ECX, Scale: 2},
	}
	reads := in.RegsRead(nil)
	if !containsReg(reads, ESI) || !containsReg(reads, ECX) || !containsReg(reads, EAX) {
		t.Errorf("RegsRead = %v, want esi, ecx, eax", reads)
	}
	writes := in.RegsWritten(nil)
	if !containsReg(writes, EAX) || len(writes) != 1 {
		t.Errorf("RegsWritten = %v, want [eax]", writes)
	}

	mov := Inst{Op: MOV, A: Operand{Kind: KindReg, Reg: EAX}, B: Operand{Kind: KindReg, Reg: EBX}}
	if containsReg(mov.RegsRead(nil), EAX) {
		t.Error("mov must not read its destination")
	}

	div := Inst{Op: IDIV, A: Operand{Kind: KindReg, Reg: EBX}}
	w := div.RegsWritten(nil)
	if !containsReg(w, EAX) || !containsReg(w, EDX) {
		t.Errorf("idiv writes = %v, want eax and edx", w)
	}
}

func TestPairingAttributes(t *testing.T) {
	if !ADD.PairableV() || !ADD.PairableU() {
		t.Error("add must pair in both pipes")
	}
	if SHL.PairableV() {
		t.Error("shifts issue only in U")
	}
	if PMADDWD.PairableV() {
		t.Error("MMX multiply issues only in U")
	}
	if IMUL.PairableU() || IMUL.PairableV() {
		t.Error("imul does not pair")
	}
	if !JNE.PairableV() || JNE.PairableU() {
		t.Error("branches pair only in V")
	}
}

func TestInstString(t *testing.T) {
	in := Inst{
		Op: MOV,
		A:  Operand{Kind: KindReg, Reg: EAX},
		B:  Operand{Kind: KindMem, Reg: ESI, Index: ECX, Scale: 4, Disp: 8, Size: SizeD},
	}
	if got := in.String(); got != "mov eax, dword [esi+ecx*4+8]" {
		t.Errorf("String = %q", got)
	}
	j := Inst{Op: JNE, TargetSym: "loop"}
	if got := j.String(); got != "jne loop" {
		t.Errorf("String = %q", got)
	}
}

func containsReg(s []Reg, r Reg) bool {
	for _, x := range s {
		if x == r {
			return true
		}
	}
	return false
}
