package isa

import "fmt"

// Op is an opcode.
type Op uint16

// Integer, control, FP, MMX and pseudo opcodes.
const (
	BAD Op = iota

	// Integer data movement.
	MOV    // mov dst, src (reg/imm/mem)
	MOVZXB // movzx r32, byte src
	MOVZXW // movzx r32, word src
	MOVSXB // movsx r32, byte src
	MOVSXW // movsx r32, word src
	LEA    // lea r32, mem
	PUSH
	POP
	XCHG

	// Integer ALU.
	ADD
	ADC
	SUB
	SBB
	AND
	OR
	XOR
	NOT
	NEG
	INC
	DEC
	CMP
	TEST
	SHL
	SHR
	SAR
	IMUL // imul r32, src : dst = dst*src (10 cycles on Pentium, per the paper)
	IDIV // idiv src : eax = eax/src, edx = eax%src (simplified from edx:eax)
	CDQ  // sign-extend eax into edx

	// Control transfer.
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JBE
	JA
	JAE
	JS
	JNS
	CALL
	RET
	HALT // stop the machine (substitute for OS exit)

	// Floating point (flat register file; see package comment in regs.go).
	FLD   // fld fp, mem (Size selects float32/float64) or fp, fp
	FST   // fst mem, fp (Size selects float32/float64) or fp, fp
	FLDC  // load immediate constant (bits of a float64) into fp reg
	FILD  // load integer memory (SizeW/SizeD) into fp reg, converting
	FIST  // store fp reg to integer memory (SizeW/SizeD), round-to-nearest
	FADD  // fadd fp, src(fp|mem)
	FSUB  // fsub fp, src
	FSUBR // fsubr fp, src : dst = src - dst
	FMUL  // fmul fp, src
	FDIV  // fdiv fp, src
	FCHS
	FABS
	FSQRT
	FSIN
	FCOS
	FCOM // compare fp regs, set integer flags (simplified from fcom+fnstsw)

	// MMX data movement.
	MOVD // movd mm, r32/m32 (zero-extends) or r32/m32, mm (low dword)
	MOVQ // movq mm, mm/m64 or m64, mm

	// MMX pack/unpack.
	PACKSSWB
	PACKSSDW
	PACKUSWB
	PUNPCKLBW
	PUNPCKHBW
	PUNPCKLWD
	PUNPCKHWD
	PUNPCKLDQ
	PUNPCKHDQ

	// MMX arithmetic.
	PADDB
	PADDW
	PADDD
	PADDSB
	PADDSW
	PADDUSB
	PADDUSW
	PSUBB
	PSUBW
	PSUBD
	PSUBSB
	PSUBSW
	PSUBUSB
	PSUBUSW
	PMADDWD // 3 cycles for two 16x16 multiplies, per the paper
	PMULHW
	PMULLW

	// MMX compare.
	PCMPEQB
	PCMPEQW
	PCMPEQD
	PCMPGTB
	PCMPGTW
	PCMPGTD

	// MMX logical.
	PAND
	PANDN
	POR
	PXOR

	// MMX shift (by immediate or by mm register count).
	PSLLW
	PSLLD
	PSLLQ
	PSRLW
	PSRLD
	PSRLQ
	PSRAW
	PSRAD

	EMMS // empty MMX state: switch back to FP mode (up to 50-cycle penalty)

	// Pseudo instructions (zero cost, not counted by the profiler).
	NOP
	PROFON  // begin measured region
	PROFOFF // end measured region

	opCount
)

// NumOps is the number of opcodes including BAD.
const NumOps = int(opCount)

// Class buckets opcodes for instruction-mix reporting, pairing rules and
// micro-op decomposition.
type Class uint8

// Instruction classes.
const (
	ClassBad Class = iota
	ClassMove
	ClassALU
	ClassShift
	ClassMul
	ClassDiv
	ClassStack
	ClassBranch
	ClassJump
	ClassCall
	ClassRet
	ClassFPMove
	ClassFPArith
	ClassFPDiv
	ClassFPTrans // transcendental / sqrt
	ClassMMXMove
	ClassMMXPack  // pack and unpack
	ClassMMXArith // add/sub/compare/logical
	ClassMMXMul   // pmullw/pmulhw/pmaddwd
	ClassMMXShift //
	ClassEMMS     //
	ClassPseudo   // nop/profon/profoff/halt
	classCount
)

// NumClasses is the number of instruction classes including ClassBad.
const NumClasses = int(classCount)

var classNames = [...]string{
	ClassBad: "bad", ClassMove: "move", ClassALU: "alu", ClassShift: "shift",
	ClassMul: "mul", ClassDiv: "div", ClassStack: "stack",
	ClassBranch: "branch", ClassJump: "jump", ClassCall: "call", ClassRet: "ret",
	ClassFPMove: "fpmove", ClassFPArith: "fparith", ClassFPDiv: "fpdiv",
	ClassFPTrans: "fptrans",
	ClassMMXMove: "mmxmove", ClassMMXPack: "mmxpack", ClassMMXArith: "mmxarith",
	ClassMMXMul: "mmxmul", ClassMMXShift: "mmxshift", ClassEMMS: "emms",
	ClassPseudo: "pseudo",
}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// MMXCategory is the paper's Figure 1(a) bucketing of MMX instructions.
type MMXCategory uint8

// MMX instruction categories from the paper.
const (
	NotMMX MMXCategory = iota
	MMXPackUnpack
	MMXArithmetic // arithmetic, compares, logicals, shifts
	MMXMove       // movd / movq
	MMXEmms
)

// String returns the category label used in Figure 1(a).
func (c MMXCategory) String() string {
	switch c {
	case MMXPackUnpack:
		return "pack/unpack"
	case MMXArithmetic:
		return "mmx arith"
	case MMXMove:
		return "mmx mov"
	case MMXEmms:
		return "emms"
	default:
		return "non-mmx"
	}
}

// opInfo is the static metadata for one opcode.
type opInfo struct {
	name  string
	class Class
	// lat is the base execution latency in cycles on the Pentium-with-MMX
	// model, excluding cache and branch penalties.
	lat int
	// pairV reports whether the instruction may issue in the V pipe
	// (i.e. as the second instruction of a pair).
	pairV bool
	// pairU reports whether another instruction may pair behind this one
	// (set for "simple" one-cycle instructions).
	pairU bool
	// uops is the Pentium II micro-op count for the register form;
	// memory forms add uopLoad/uopStore (see UopCount).
	uops int
}

var opTable = [NumOps]opInfo{
	BAD: {"bad", ClassBad, 1, false, false, 1},

	MOV:    {"mov", ClassMove, 1, true, true, 1},
	MOVZXB: {"movzx.b", ClassMove, 1, true, true, 1},
	MOVZXW: {"movzx.w", ClassMove, 1, true, true, 1},
	MOVSXB: {"movsx.b", ClassMove, 1, true, true, 1},
	MOVSXW: {"movsx.w", ClassMove, 1, true, true, 1},
	LEA:    {"lea", ClassALU, 1, true, true, 1},
	PUSH:   {"push", ClassStack, 1, true, true, 3},
	POP:    {"pop", ClassStack, 1, true, true, 2},
	XCHG:   {"xchg", ClassMove, 2, false, false, 3},

	ADD:  {"add", ClassALU, 1, true, true, 1},
	ADC:  {"adc", ClassALU, 1, false, true, 2},
	SUB:  {"sub", ClassALU, 1, true, true, 1},
	SBB:  {"sbb", ClassALU, 1, false, true, 2},
	AND:  {"and", ClassALU, 1, true, true, 1},
	OR:   {"or", ClassALU, 1, true, true, 1},
	XOR:  {"xor", ClassALU, 1, true, true, 1},
	NOT:  {"not", ClassALU, 1, true, true, 1},
	NEG:  {"neg", ClassALU, 1, true, true, 1},
	INC:  {"inc", ClassALU, 1, true, true, 1},
	DEC:  {"dec", ClassALU, 1, true, true, 1},
	CMP:  {"cmp", ClassALU, 1, true, true, 1},
	TEST: {"test", ClassALU, 1, true, true, 1},
	// Shifts issue only in the U pipe on the Pentium.
	SHL: {"shl", ClassShift, 1, false, true, 1},
	SHR: {"shr", ClassShift, 1, false, true, 1},
	SAR: {"sar", ClassShift, 1, false, true, 1},
	// The paper: "the imul instruction ... does integer multiplication in
	// 10 cycles".
	IMUL: {"imul", ClassMul, 10, false, false, 1},
	IDIV: {"idiv", ClassDiv, 46, false, false, 4},
	CDQ:  {"cdq", ClassALU, 2, false, false, 1},

	// Branches pair only in the V pipe (issue as the second of a pair).
	JMP: {"jmp", ClassJump, 1, true, false, 1},
	JE:  {"je", ClassBranch, 1, true, false, 1},
	JNE: {"jne", ClassBranch, 1, true, false, 1},
	JL:  {"jl", ClassBranch, 1, true, false, 1},
	JLE: {"jle", ClassBranch, 1, true, false, 1},
	JG:  {"jg", ClassBranch, 1, true, false, 1},
	JGE: {"jge", ClassBranch, 1, true, false, 1},
	JB:  {"jb", ClassBranch, 1, true, false, 1},
	JBE: {"jbe", ClassBranch, 1, true, false, 1},
	JA:  {"ja", ClassBranch, 1, true, false, 1},
	JAE: {"jae", ClassBranch, 1, true, false, 1},
	JS:  {"js", ClassBranch, 1, true, false, 1},
	JNS: {"jns", ClassBranch, 1, true, false, 1},
	// Near call/ret cost a few cycles each for the stack update and the
	// return-address traffic; the paper leans on this overhead heavily
	// (23.88% of radar.mmx cycles in call+ret).
	CALL: {"call", ClassCall, 3, false, false, 4},
	RET:  {"ret", ClassRet, 3, false, false, 4},
	HALT: {"halt", ClassPseudo, 1, false, false, 1},

	FLD:   {"fld", ClassFPMove, 1, false, true, 1},
	FST:   {"fst", ClassFPMove, 2, false, true, 1},
	FLDC:  {"fldc", ClassFPMove, 1, false, true, 1},
	FILD:  {"fild", ClassFPMove, 3, false, false, 3},
	FIST:  {"fist", ClassFPMove, 6, false, false, 4},
	FADD:  {"fadd", ClassFPArith, 3, false, false, 1},
	FSUB:  {"fsub", ClassFPArith, 3, false, false, 1},
	FSUBR: {"fsubr", ClassFPArith, 3, false, false, 1},
	FMUL:  {"fmul", ClassFPArith, 3, false, false, 1},
	FDIV:  {"fdiv", ClassFPDiv, 39, false, false, 1},
	FCHS:  {"fchs", ClassFPArith, 1, false, true, 1},
	FABS:  {"fabs", ClassFPArith, 1, false, true, 1},
	FSQRT: {"fsqrt", ClassFPTrans, 70, false, false, 1},
	FSIN:  {"fsin", ClassFPTrans, 65, false, false, 8},
	FCOS:  {"fcos", ClassFPTrans, 65, false, false, 8},
	FCOM:  {"fcom", ClassFPArith, 4, false, false, 2},

	MOVD: {"movd", ClassMMXMove, 1, true, true, 1},
	MOVQ: {"movq", ClassMMXMove, 1, true, true, 1},

	PACKSSWB:  {"packsswb", ClassMMXPack, 1, true, true, 1},
	PACKSSDW:  {"packssdw", ClassMMXPack, 1, true, true, 1},
	PACKUSWB:  {"packuswb", ClassMMXPack, 1, true, true, 1},
	PUNPCKLBW: {"punpcklbw", ClassMMXPack, 1, true, true, 1},
	PUNPCKHBW: {"punpckhbw", ClassMMXPack, 1, true, true, 1},
	PUNPCKLWD: {"punpcklwd", ClassMMXPack, 1, true, true, 1},
	PUNPCKHWD: {"punpckhwd", ClassMMXPack, 1, true, true, 1},
	PUNPCKLDQ: {"punpckldq", ClassMMXPack, 1, true, true, 1},
	PUNPCKHDQ: {"punpckhdq", ClassMMXPack, 1, true, true, 1},

	PADDB:   {"paddb", ClassMMXArith, 1, true, true, 1},
	PADDW:   {"paddw", ClassMMXArith, 1, true, true, 1},
	PADDD:   {"paddd", ClassMMXArith, 1, true, true, 1},
	PADDSB:  {"paddsb", ClassMMXArith, 1, true, true, 1},
	PADDSW:  {"paddsw", ClassMMXArith, 1, true, true, 1},
	PADDUSB: {"paddusb", ClassMMXArith, 1, true, true, 1},
	PADDUSW: {"paddusw", ClassMMXArith, 1, true, true, 1},
	PSUBB:   {"psubb", ClassMMXArith, 1, true, true, 1},
	PSUBW:   {"psubw", ClassMMXArith, 1, true, true, 1},
	PSUBD:   {"psubd", ClassMMXArith, 1, true, true, 1},
	PSUBSB:  {"psubsb", ClassMMXArith, 1, true, true, 1},
	PSUBSW:  {"psubsw", ClassMMXArith, 1, true, true, 1},
	PSUBUSB: {"psubusb", ClassMMXArith, 1, true, true, 1},
	PSUBUSW: {"psubusw", ClassMMXArith, 1, true, true, 1},
	// The MMX multiplier is pipelined with a 3-cycle latency and lives in
	// the U pipe only. The paper: "the pmaddwd MMX instruction ... can
	// perform two multiplications in 3 cycles".
	PMADDWD: {"pmaddwd", ClassMMXMul, 3, false, true, 1},
	PMULHW:  {"pmulhw", ClassMMXMul, 3, false, true, 1},
	PMULLW:  {"pmullw", ClassMMXMul, 3, false, true, 1},

	PCMPEQB: {"pcmpeqb", ClassMMXArith, 1, true, true, 1},
	PCMPEQW: {"pcmpeqw", ClassMMXArith, 1, true, true, 1},
	PCMPEQD: {"pcmpeqd", ClassMMXArith, 1, true, true, 1},
	PCMPGTB: {"pcmpgtb", ClassMMXArith, 1, true, true, 1},
	PCMPGTW: {"pcmpgtw", ClassMMXArith, 1, true, true, 1},
	PCMPGTD: {"pcmpgtd", ClassMMXArith, 1, true, true, 1},

	PAND:  {"pand", ClassMMXArith, 1, true, true, 1},
	PANDN: {"pandn", ClassMMXArith, 1, true, true, 1},
	POR:   {"por", ClassMMXArith, 1, true, true, 1},
	PXOR:  {"pxor", ClassMMXArith, 1, true, true, 1},

	// The MMX shifter lives in the U pipe only.
	PSLLW: {"psllw", ClassMMXShift, 1, false, true, 1},
	PSLLD: {"pslld", ClassMMXShift, 1, false, true, 1},
	PSLLQ: {"psllq", ClassMMXShift, 1, false, true, 1},
	PSRLW: {"psrlw", ClassMMXShift, 1, false, true, 1},
	PSRLD: {"psrld", ClassMMXShift, 1, false, true, 1},
	PSRLQ: {"psrlq", ClassMMXShift, 1, false, true, 1},
	PSRAW: {"psraw", ClassMMXShift, 1, false, true, 1},
	PSRAD: {"psrad", ClassMMXShift, 1, false, true, 1},

	// "The emms ... instruction that switches from MMX to floating-point
	// mode can incur up to a 50-cycle penalty."
	EMMS: {"emms", ClassEMMS, 50, false, false, 11},

	NOP:     {"nop", ClassPseudo, 0, true, true, 0},
	PROFON:  {"profon", ClassPseudo, 0, false, false, 0},
	PROFOFF: {"profoff", ClassPseudo, 0, false, false, 0},
}

// Name returns the assembler mnemonic for the opcode.
func (op Op) Name() string {
	if int(op) < NumOps {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint16(op))
}

// String implements fmt.Stringer.
func (op Op) String() string { return op.Name() }

// Class returns the instruction class of the opcode.
func (op Op) Class() Class {
	if int(op) < NumOps {
		return opTable[op].class
	}
	return ClassBad
}

// Latency returns the base execution latency in cycles, excluding cache and
// branch penalties.
func (op Op) Latency() int { return opTable[op].lat }

// PairableV reports whether the instruction may issue as the second
// instruction of a U/V pair.
func (op Op) PairableV() bool { return opTable[op].pairV }

// PairableU reports whether another instruction may pair behind this one.
func (op Op) PairableU() bool { return opTable[op].pairU }

// BaseUops returns the Pentium II micro-op count of the register form.
func (op Op) BaseUops() int { return opTable[op].uops }

// IsMMX reports whether the opcode belongs to the MMX extension
// (including movd/movq and emms, as the paper counts them).
func (op Op) IsMMX() bool {
	switch op.Class() {
	case ClassMMXMove, ClassMMXPack, ClassMMXArith, ClassMMXMul, ClassMMXShift, ClassEMMS:
		return true
	}
	return false
}

// IsFP reports whether the opcode is a floating-point instruction.
func (op Op) IsFP() bool {
	switch op.Class() {
	case ClassFPMove, ClassFPArith, ClassFPDiv, ClassFPTrans:
		return true
	}
	return false
}

// IsBranch reports whether the opcode is a conditional branch.
func (op Op) IsBranch() bool { return op.Class() == ClassBranch }

// IsPseudo reports whether the opcode is a zero-cost pseudo instruction
// that the profiler must not count.
func (op Op) IsPseudo() bool { return op.Class() == ClassPseudo }

// Category returns the paper's Figure 1(a) MMX bucket for the opcode.
func (op Op) Category() MMXCategory {
	switch op.Class() {
	case ClassMMXPack:
		return MMXPackUnpack
	case ClassMMXArith, ClassMMXMul, ClassMMXShift:
		return MMXArithmetic
	case ClassMMXMove:
		return MMXMove
	case ClassEMMS:
		return MMXEmms
	default:
		return NotMMX
	}
}

// MMXOpcodeCount is the number of MMX opcodes this ISA implements. Intel
// counts 57 MMX instructions at the encoding level (e.g. register and
// immediate shift forms count separately); at the mnemonic level this ISA
// provides the complete packed operation set.
func MMXOpcodeCount() int {
	n := 0
	for op := Op(0); op < opCount; op++ {
		if op.IsMMX() {
			n++
		}
	}
	return n
}
