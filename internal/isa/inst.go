package isa

import (
	"fmt"
	"strings"
)

// OperandKind discriminates the operand encoding.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindMem
)

// Operand is one instruction operand: a register, an immediate, or a memory
// reference of the form [base + index*scale + disp], optionally anchored to
// a data symbol resolved at link time.
type Operand struct {
	Kind  OperandKind
	Reg   Reg   // KindReg: the register; KindMem: the base register (may be NoReg)
	Index Reg   // KindMem: optional index register
	Scale uint8 // KindMem: 1, 2, 4 or 8 (0 means 1)
	Disp  int32 // KindMem: displacement (after symbol resolution)
	Sym   string
	Imm   int64 // KindImm: the immediate value
	Size  Size  // access width for memory operands and some immediates
}

// IsMem reports whether the operand references memory.
func (o Operand) IsMem() bool { return o.Kind == KindMem }

// IsReg reports whether the operand is a register.
func (o Operand) IsReg() bool { return o.Kind == KindReg }

// IsImm reports whether the operand is an immediate.
func (o Operand) IsImm() bool { return o.Kind == KindImm }

// String renders the operand in assembler syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return ""
	case KindReg:
		return o.Reg.String()
	case KindImm:
		return fmt.Sprintf("%d", o.Imm)
	case KindMem:
		var b strings.Builder
		if o.Size != SizeNone {
			b.WriteString(o.Size.String())
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		parts := []string{}
		if o.Sym != "" {
			parts = append(parts, o.Sym)
		}
		if o.Reg != NoReg {
			parts = append(parts, o.Reg.String())
		}
		if o.Index != NoReg {
			s := o.Scale
			if s == 0 {
				s = 1
			}
			parts = append(parts, fmt.Sprintf("%s*%d", o.Index, s))
		}
		if o.Disp != 0 || len(parts) == 0 {
			parts = append(parts, fmt.Sprintf("%d", o.Disp))
		}
		b.WriteString(strings.Join(parts, "+"))
		b.WriteByte(']')
		return strings.ReplaceAll(b.String(), "+-", "-")
	}
	return "?"
}

// Inst is one instruction: an opcode and up to two operands
// (destination first, following Intel syntax).
type Inst struct {
	Op Op
	A  Operand // destination (or jump target label index for control flow)
	B  Operand // source
	// Target is the resolved instruction index for control transfer
	// (filled by the assembler's link step).
	Target int32
	// TargetSym is the label name before linking.
	TargetSym string
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	var b strings.Builder
	b.WriteString(in.Op.Name())
	if in.TargetSym != "" {
		b.WriteByte(' ')
		b.WriteString(in.TargetSym)
		return b.String()
	}
	if in.A.Kind != KindNone {
		b.WriteByte(' ')
		b.WriteString(in.A.String())
	}
	if in.B.Kind != KindNone {
		b.WriteString(", ")
		b.WriteString(in.B.String())
	}
	return b.String()
}

// ReferencesMemory reports whether the instruction uses any memory
// addressing mode. This is the paper's "% Memory References" predicate.
// Stack-implicit operations (push/pop/call/ret) reference memory.
func (in Inst) ReferencesMemory() bool {
	switch in.Op {
	case PUSH, POP, CALL, RET:
		return true
	case LEA:
		// lea computes an address but performs no access.
		return false
	}
	return in.A.IsMem() || in.B.IsMem()
}

// MemOperand returns the memory operand if any (at most one per instruction
// in this ISA, as on IA-32).
func (in Inst) MemOperand() (Operand, bool) {
	if in.A.IsMem() {
		return in.A, true
	}
	if in.B.IsMem() {
		return in.B, true
	}
	return Operand{}, false
}

// IsLoad reports whether the instruction reads from an explicit memory operand.
func (in Inst) IsLoad() bool {
	if in.B.IsMem() {
		return true
	}
	// Read-modify-write destination forms also load.
	if in.A.IsMem() {
		switch in.Op.Class() {
		case ClassALU, ClassShift:
			return in.Op != MOV
		}
	}
	return false
}

// IsStore reports whether the instruction writes an explicit memory operand.
func (in Inst) IsStore() bool {
	if !in.A.IsMem() {
		return false
	}
	switch in.Op {
	case CMP, TEST, FCOM:
		return false
	}
	// FLD/FILD/MOVQ/MOVD with a memory *source* put it in B, so a memory A
	// on those ops is a true store (fst/fist/movq m64,mm/...).
	return true
}

// UopCount returns the Pentium II micro-op decomposition count for the
// instruction, following the P6 decode rules: a memory source adds a load
// micro-op; a memory destination adds store-address and store-data
// micro-ops; read-modify-write forms pay both.
func (in Inst) UopCount() int {
	n := in.Op.BaseUops()
	if in.Op.IsPseudo() {
		return n
	}
	switch in.Op {
	case PUSH, POP, CALL, RET:
		return n // stack traffic already included in the base count
	}
	if in.B.IsMem() {
		n++ // load micro-op
	}
	if in.A.IsMem() {
		if in.IsLoad() && in.A.IsMem() && in.Op != MOV {
			n++ // load half of a read-modify-write
		}
		if in.IsStore() {
			n += 2 // store-address + store-data
		} else {
			n++ // pure read of destination operand (cmp mem, reg)
		}
	}
	return n
}

// RegsRead returns the registers the instruction reads (for dependency
// checks in the pairing model). The result slice is appended to dst.
func (in Inst) RegsRead(dst []Reg) []Reg {
	addMem := func(o Operand) {
		if o.Reg != NoReg {
			dst = append(dst, o.Reg)
		}
		if o.Index != NoReg {
			dst = append(dst, o.Index)
		}
	}
	// Source operand.
	switch in.B.Kind {
	case KindReg:
		dst = append(dst, in.B.Reg)
	case KindMem:
		addMem(in.B)
	}
	// Destination operand: address registers always read; the register
	// itself is read unless this is a pure move.
	switch in.A.Kind {
	case KindReg:
		if !in.isPureDstWrite() {
			dst = append(dst, in.A.Reg)
		}
	case KindMem:
		addMem(in.A)
	}
	switch in.Op {
	case PUSH, POP, CALL, RET:
		dst = append(dst, ESP)
	case IDIV, CDQ:
		dst = append(dst, EAX)
	}
	return dst
}

// RegsWritten returns the registers the instruction writes.
func (in Inst) RegsWritten(dst []Reg) []Reg {
	if in.A.Kind == KindReg && in.writesDst() {
		dst = append(dst, in.A.Reg)
	}
	switch in.Op {
	case PUSH, POP, CALL, RET:
		dst = append(dst, ESP)
	case IDIV:
		dst = append(dst, EAX, EDX)
	case CDQ:
		dst = append(dst, EDX)
	}
	return dst
}

// isPureDstWrite reports whether the destination register is write-only
// (not also read), as in mov/movzx/lea/fld-from-mem/movq-from-mem.
func (in Inst) isPureDstWrite() bool {
	switch in.Op {
	case MOV, MOVZXB, MOVZXW, MOVSXB, MOVSXW, LEA, POP, FLD, FLDC, FILD, MOVD, MOVQ:
		return true
	}
	return false
}

// writesDst reports whether the instruction writes its destination operand.
func (in Inst) writesDst() bool {
	switch in.Op {
	case CMP, TEST, FCOM, PUSH, JMP, CALL:
		return false
	}
	return true
}
