// Package isa defines the instruction-set architecture simulated by this
// repository: an IA-32 integer subset, a flat-register x87-style floating
// point unit, and the full MMX packed-SIMD extension, together with the
// per-instruction metadata (class, latency, pairing attributes, Pentium II
// micro-op decomposition) that the timing model and the VTune-style profiler
// consume.
//
// The metadata tables encode the published Pentium-with-MMX characteristics
// the paper relies on (imul = 10 cycles, pmaddwd = 3 cycles, emms up to 50
// cycles, fdiv = 39, ...). Where exact figures are not architecturally
// load-bearing for the paper's analysis, the tables use documented
// approximations.
package isa

import "fmt"

// Reg names an architectural register. The zero value NoReg means "absent".
type Reg uint8

// General-purpose, MMX and FP registers. MMX registers are architecturally
// aliased onto the FP registers (MMi shares storage with FPi); the VM
// enforces the mode-switch discipline (emms) between the two files.
const (
	NoReg Reg = iota
	EAX
	EBX
	ECX
	EDX
	ESI
	EDI
	EBP
	ESP
	MM0
	MM1
	MM2
	MM3
	MM4
	MM5
	MM6
	MM7
	FP0
	FP1
	FP2
	FP3
	FP4
	FP5
	FP6
	FP7
	regCount
)

// NumRegs is the number of register names including NoReg.
const NumRegs = int(regCount)

var regNames = [...]string{
	NoReg: "-",
	EAX:   "eax", EBX: "ebx", ECX: "ecx", EDX: "edx",
	ESI: "esi", EDI: "edi", EBP: "ebp", ESP: "esp",
	MM0: "mm0", MM1: "mm1", MM2: "mm2", MM3: "mm3",
	MM4: "mm4", MM5: "mm5", MM6: "mm6", MM7: "mm7",
	FP0: "fp0", FP1: "fp1", FP2: "fp2", FP3: "fp3",
	FP4: "fp4", FP5: "fp5", FP6: "fp6", FP7: "fp7",
}

// String returns the assembler name of the register.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// IsGPR reports whether r is a general-purpose integer register.
func (r Reg) IsGPR() bool { return r >= EAX && r <= ESP }

// IsMMX reports whether r is an MMX register.
func (r Reg) IsMMX() bool { return r >= MM0 && r <= MM7 }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= FP0 && r <= FP7 }

// GPRIndex returns the 0-based index of a GPR.
func (r Reg) GPRIndex() int { return int(r - EAX) }

// MMXIndex returns the 0-based index of an MMX register.
func (r Reg) MMXIndex() int { return int(r - MM0) }

// FPIndex returns the 0-based index of an FP register.
func (r Reg) FPIndex() int { return int(r - FP0) }

// Size is the width of a memory access or immediate operand in bytes.
type Size uint8

// Operand widths.
const (
	SizeNone Size = 0
	SizeB    Size = 1
	SizeW    Size = 2
	SizeD    Size = 4
	SizeQ    Size = 8
)

// String returns the assembler width suffix.
func (s Size) String() string {
	switch s {
	case SizeB:
		return "byte"
	case SizeW:
		return "word"
	case SizeD:
		return "dword"
	case SizeQ:
		return "qword"
	default:
		return "?"
	}
}
