package isa

// InstMeta is the static, per-instruction metadata that the timing model and
// the profiler would otherwise re-derive on every retirement: everything
// here is invariant for a given Inst, so it is computed once per static
// instruction (at program link time) and indexed by PC for each of the
// millions of dynamic events a suite run retires.
type InstMeta struct {
	Class    Class
	Category MMXCategory
	// Latency is the base execution latency (Op.Latency()); the timing
	// model applies its configuration overrides on top.
	Latency int
	// Uops is the Pentium II micro-op decomposition (Inst.UopCount()).
	Uops int
	// PairU/PairV are the opcode's pairing attributes.
	PairU, PairV bool
	// RefsMem is Inst.ReferencesMemory().
	RefsMem bool
	// Branch reports a conditional branch (Op.IsBranch()).
	Branch bool
	// Reads and Writes are the fixed register sets of Inst.RegsRead and
	// Inst.RegsWritten. They are immutable once computed; consumers must
	// not append to or modify them.
	Reads, Writes []Reg
}

// MetaFor computes the static metadata record for one instruction.
func MetaFor(in *Inst) InstMeta {
	op := in.Op
	return InstMeta{
		Class:    op.Class(),
		Category: op.Category(),
		Latency:  op.Latency(),
		Uops:     in.UopCount(),
		PairU:    op.PairableU(),
		PairV:    op.PairableV(),
		RefsMem:  in.ReferencesMemory(),
		Branch:   op.IsBranch(),
		Reads:    in.RegsRead(nil),
		Writes:   in.RegsWritten(nil),
	}
}

// ProgramMeta computes the per-PC metadata table for a linked instruction
// sequence. The result is indexed by instruction index (PC).
func ProgramMeta(insts []Inst) []InstMeta {
	meta := make([]InstMeta, len(insts))
	for i := range insts {
		meta[i] = MetaFor(&insts[i])
	}
	return meta
}
