package isa

// Block-level static aggregates. A basic block's body (everything up to its
// terminator) retires as one straight-line run, so every per-event profile
// counter update the body would perform — instruction, uop, memory-reference,
// class, opcode and MMX-category counts — can be summed once at compile time
// and applied with a handful of adds per block execution.

// EmitsEvent reports whether a retired instance of the opcode produces a VM
// retirement event. NOP and the profiling markers manage interpreter state
// but are invisible to observers.
func (op Op) EmitsEvent() bool {
	switch op {
	case NOP, PROFON, PROFOFF:
		return false
	}
	return true
}

// ClassCount is one sparse per-class counter of a block aggregate.
type ClassCount struct {
	Class Class
	N     uint64
}

// OpCount is one sparse per-opcode counter of a block aggregate.
type OpCount struct {
	Op Op
	N  uint64
}

// BlockAgg is the static profile aggregate of one basic-block body. All
// counts cover the event-emitting instructions listed in PCs; NOPs inside
// the body retire silently and appear in no aggregate, exactly as on the
// per-event path.
type BlockAgg struct {
	// PCs lists the body's event-emitting instructions in program order.
	PCs []int32
	// IsMem flags, per PCs entry, the instructions that reference memory
	// (loads, stores, and the implicit stack accesses of push/pop).
	IsMem []bool
	// MemN is the number of true entries in IsMem.
	MemN int

	Uops    uint64
	MemRefs uint64
	// Classes and Ops are sparse: one entry per class/opcode that occurs
	// in the body, in first-occurrence order.
	Classes []ClassCount
	Ops     []OpCount
	// MMXCat is indexed by MMXCategory.
	MMXCat [5]uint64
}

// BlockAggFor sums the static metadata of the block body [start, end)
// excluding term (the terminator PC, or -1 for fall-through blocks); the
// terminator always retires through the per-event path because its timing
// depends on dynamic state (branch direction, BTB, stack memory).
func BlockAggFor(insts []Inst, meta []InstMeta, start, end, term int) BlockAgg {
	bodyEnd := end
	if term >= 0 {
		bodyEnd = term
	}
	var agg BlockAgg
	var classN [NumClasses]uint64
	var opN [NumOps]uint64
	for pc := start; pc < bodyEnd; pc++ {
		if !insts[pc].Op.EmitsEvent() {
			continue
		}
		md := &meta[pc]
		agg.PCs = append(agg.PCs, int32(pc))
		agg.IsMem = append(agg.IsMem, md.RefsMem)
		if md.RefsMem {
			agg.MemN++
			agg.MemRefs++
		}
		agg.Uops += uint64(md.Uops)
		agg.MMXCat[md.Category]++
		classN[md.Class]++
		opN[insts[pc].Op]++
	}
	for cl, n := range classN {
		if n > 0 {
			agg.Classes = append(agg.Classes, ClassCount{Class: Class(cl), N: n})
		}
	}
	for op, n := range opN {
		if n > 0 {
			agg.Ops = append(agg.Ops, OpCount{Op: Op(op), N: n})
		}
	}
	return agg
}
