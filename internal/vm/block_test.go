package vm_test

// Tests for the block-dispatch loop's interaction with the cache hierarchy:
// memory-bearing blocks collect per-reference penalties from mem.Hierarchy,
// and whether an execution is applied through the fused block schedule or
// replayed per-event, the cache statistics and the profiling report must
// match the per-event predecoded path exactly.

import (
	"reflect"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mem"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/profile"
	"mmxdsp/internal/vm"
)

// buildStreamProg walks a buffer much larger than the L1 cache with a
// line-sized stride, so the measured loop's memory-bearing block sees a
// mix of L1 misses (first pass, capacity misses) and hits.
func buildStreamProg(t *testing.T) *asm.Program {
	t.Helper()
	const bufBytes = 1 << 16
	b := asm.NewBuilder("stream")
	b.Reserve("buf", bufBytes)
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(4))
	b.Label("pass")
	b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("buf", 0))
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(bufBytes/32))
	b.Label("loop")
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.ESI, 0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(7))
	b.I(isa.MOV, asm.MemD(isa.ESI, 0), asm.R(isa.EAX))
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(32))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(1))
	b.J(isa.JNE, "loop")
	b.I(isa.SUB, asm.R(isa.EDX), asm.Imm(1))
	b.J(isa.JNE, "pass")
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	return b.MustLink()
}

// runHier runs prog with the full timing pipeline and a cache hierarchy on
// the requested dispatch path.
func runHier(t *testing.T, prog *asm.Program, noBlocks bool) (*profile.Report, *profile.Collector, mem.HierarchyStats) {
	t.Helper()
	model := pentium.New(pentium.DefaultConfig())
	model.Bind(prog)
	col := profile.NewCollector(prog, model)
	cpu := vm.New(prog)
	cpu.Obs = col
	cpu.NoBlocks = noBlocks
	cpu.Hier = mem.NewHierarchy()
	if err := cpu.Run(1 << 30); err != nil {
		t.Fatalf("run (noBlocks=%v): %v", noBlocks, err)
	}
	return col.Report(prog.Name), col, cpu.Hier.Stats
}

func TestBlockPathCacheCountersMatchPredecoded(t *testing.T) {
	prog := buildStreamProg(t)

	preRep, _, preStats := runHier(t, prog, true)
	blkRep, blkCol, blkStats := runHier(t, prog, false)

	if preStats.L1Misses == 0 {
		t.Fatal("stream program produced no L1 misses; the test is vacuous")
	}
	if blkStats != preStats {
		t.Errorf("cache statistics differ:\n predecoded %+v\n block %+v", preStats, blkStats)
	}
	if !reflect.DeepEqual(preRep, blkRep) {
		t.Errorf("reports differ:\n predecoded %+v\n block %+v", preRep, blkRep)
	}

	// The block run must have exercised both observer paths: fused
	// fast-path applications and per-event retirement (at least the loop
	// terminators and the first-sight penalty signatures).
	fast, perEvent := blkCol.BlockStats()
	if fast == 0 {
		t.Error("block run applied no fused block schedules")
	}
	if perEvent == 0 {
		t.Error("block run retired no events per-event (terminators should)")
	}
}

// TestBlockPathPerfectCacheMatches covers the no-hierarchy configuration:
// with no cache model attached there are no penalties, and the two paths
// must still agree on the report.
func TestBlockPathPerfectCacheMatches(t *testing.T) {
	prog := buildStreamProg(t)

	run := func(noBlocks bool) *profile.Report {
		model := pentium.New(pentium.DefaultConfig())
		model.Bind(prog)
		col := profile.NewCollector(prog, model)
		cpu := vm.New(prog)
		cpu.Obs = col
		cpu.NoBlocks = noBlocks
		if err := cpu.Run(1 << 30); err != nil {
			t.Fatalf("run (noBlocks=%v): %v", noBlocks, err)
		}
		return col.Report(prog.Name)
	}
	pre, blk := run(true), run(false)
	if !reflect.DeepEqual(pre, blk) {
		t.Errorf("reports differ:\n predecoded %+v\n block %+v", pre, blk)
	}
}
