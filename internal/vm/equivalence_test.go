package vm_test

// Differential tests for the interpreter inner loops: every program in the
// benchmark suite runs through the generic decode-per-step loop, the
// predecoded threaded-dispatch loop, the block-dispatch loop and the
// trace-dispatch loop, with the full timing pipeline attached (bound
// Pentium model, profile collector, cache hierarchy). All paths must agree
// on every architecturally visible
// outcome: registers, the entire memory image, and the profiling report
// (cycles, pairing, class attribution, cache statistics). The two per-event
// paths additionally compare a hash over the complete retired-event stream;
// the block path retires whole blocks at a time, so it has no per-event
// stream to hash, and is instead pinned by the report and machine state.

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"reflect"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mem"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/profile"
	"mmxdsp/internal/suite"
	"mmxdsp/internal/vm"
)

// eventHasher folds every retired event into an FNV-64a running hash, so the
// comparison covers millions of events without storing them.
type eventHasher struct {
	next vm.Observer
	sum  uint64
	n    uint64
}

func (h *eventHasher) Retire(ev vm.Event) {
	f := fnv.New64a()
	var buf [28]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(ev.PC))
	binary.LittleEndian.PutUint32(buf[4:], uint32(ev.Inst.Op))
	binary.LittleEndian.PutUint32(buf[8:], uint32(ev.Target))
	binary.LittleEndian.PutUint32(buf[12:], uint32(ev.MemPenalty))
	binary.LittleEndian.PutUint64(buf[16:], h.sum)
	if ev.Measured {
		buf[24] = 1
	}
	if ev.Taken {
		buf[25] = 1
	}
	f.Write(buf[:])
	h.sum = f.Sum64()
	h.n++
	if h.next != nil {
		h.next.Retire(ev)
	}
}

// runOutcome is everything one interpreter path produces.
type runOutcome struct {
	gpr       [8]uint32
	mm        [8]uint64
	fp        [8]float64
	mem       []byte
	executed  int64
	report    *profile.Report
	eventHash uint64
	events    uint64
}

func runPath(t *testing.T, prog *asm.Program, mode string) *runOutcome {
	t.Helper()
	cfg := pentium.DefaultConfig()
	model := pentium.New(cfg)
	model.Bind(prog)
	col := profile.NewCollector(prog, model)
	hasher := &eventHasher{next: col}

	cpu := vm.New(prog)
	switch mode {
	case "generic":
		cpu.Generic = true
		cpu.Obs = hasher
	case "predecode":
		// An event-hashing observer is not a BlockObserver, so attaching
		// it pins the per-event predecoded loop.
		cpu.Obs = hasher
	case "block":
		cpu.Obs = col
	case "trace":
		cpu.Obs = col
		cpu.Traces = true
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	cpu.Hier = mem.NewHierarchy()
	if err := cpu.Run(1 << 31); err != nil {
		t.Fatalf("run (%s): %v", mode, err)
	}

	out := &runOutcome{
		executed:  cpu.Executed(),
		report:    col.Report(prog.Name),
		eventHash: hasher.sum,
		events:    hasher.n,
	}
	for i := 0; i < 8; i++ {
		out.gpr[i] = cpu.GPR(isa.EAX + isa.Reg(i))
		out.mm[i] = uint64(cpu.MM(isa.MM0 + isa.Reg(i)))
		out.fp[i] = cpu.FPReg(isa.FP0 + isa.Reg(i))
	}
	out.report.CacheAccesses = cpu.Hier.Stats.Accesses
	out.report.L1Misses = cpu.Hier.Stats.L1Misses
	out.report.L2Misses = cpu.Hier.Stats.L2Misses
	out.mem = append([]byte(nil), cpu.Mem.Bytes()...)
	return out
}

// compareOutcomes fails the test wherever two interpreter paths disagree.
// Event-stream hashes are only compared when both paths collected one (the
// block path retires bodies in bulk and records no per-event stream).
func compareOutcomes(t *testing.T, aName string, a *runOutcome, bName string, b *runOutcome) {
	t.Helper()
	if a.gpr != b.gpr {
		t.Errorf("GPRs differ:\n %s %v\n %s %v", aName, a.gpr, bName, b.gpr)
	}
	if a.mm != b.mm {
		t.Errorf("MM registers differ:\n %s %v\n %s %v", aName, a.mm, bName, b.mm)
	}
	if a.fp != b.fp {
		t.Errorf("FP registers differ:\n %s %v\n %s %v", aName, a.fp, bName, b.fp)
	}
	if a.executed != b.executed {
		t.Errorf("executed: %s %d, %s %d", aName, a.executed, bName, b.executed)
	}
	if a.events != 0 && b.events != 0 &&
		(a.events != b.events || a.eventHash != b.eventHash) {
		t.Errorf("event streams differ: %s %d events hash %#x, %s %d events hash %#x",
			aName, a.events, a.eventHash, bName, b.events, b.eventHash)
	}
	if !bytes.Equal(a.mem, b.mem) {
		for i := range a.mem {
			if a.mem[i] != b.mem[i] {
				t.Errorf("memory images differ first at %#x: %s %#x, %s %#x",
					i, aName, a.mem[i], bName, b.mem[i])
				break
			}
		}
	}
	if !reflect.DeepEqual(a.report, b.report) {
		t.Errorf("reports differ:\n %s %+v\n %s %+v", aName, a.report, bName, b.report)
	}
}

// TestDispatchModesAgree is the four-way differential over the whole
// benchmark suite: generic, predecoded, block and trace dispatch must be
// observationally identical.
func TestDispatchModesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential run is slow; skipped with -short")
	}
	for _, b := range suite.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			prog, err := b.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			gen := runPath(t, prog, "generic")
			pre := runPath(t, prog, "predecode")
			blk := runPath(t, prog, "block")
			trc := runPath(t, prog, "trace")

			compareOutcomes(t, "generic", gen, "predecoded", pre)
			compareOutcomes(t, "predecoded", pre, "block", blk)
			compareOutcomes(t, "block", blk, "trace", trc)
		})
	}
}

// TestPredecodedFaultsMatchGeneric checks that the out-of-program control
// transfer fault is identical under both loops.
func TestPredecodedFaultsMatchGeneric(t *testing.T) {
	build := func() *asm.Program {
		b := asm.NewBuilder("fallthrough")
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(1))
		return b.MustLink()
	}
	g := vm.New(build())
	g.Generic = true
	errG := g.Run(100)
	p := vm.New(build())
	errP := p.Run(100)
	if errG == nil || errP == nil {
		t.Fatal("both paths must fault on running off the end")
	}
	if errG.Error() != errP.Error() {
		t.Errorf("fault text differs:\n generic: %v\n predecoded: %v", errG, errP)
	}
}
