package vm_test

// Differential test for the predecoded interpreter: every program in the
// benchmark suite runs through both the generic decode-per-step loop and the
// predecoded threaded-dispatch loop, with the full timing pipeline attached
// (bound Pentium model, profile collector, cache hierarchy). The two paths
// must agree on every architecturally visible outcome: registers, the entire
// memory image, the profiling report (cycles, pairing, class attribution,
// cache statistics) and a hash over the complete retired-event stream.

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"reflect"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mem"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/profile"
	"mmxdsp/internal/suite"
	"mmxdsp/internal/vm"
)

// eventHasher folds every retired event into an FNV-64a running hash, so the
// comparison covers millions of events without storing them.
type eventHasher struct {
	next vm.Observer
	sum  uint64
	n    uint64
}

func (h *eventHasher) Retire(ev vm.Event) {
	f := fnv.New64a()
	var buf [28]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(ev.PC))
	binary.LittleEndian.PutUint32(buf[4:], uint32(ev.Inst.Op))
	binary.LittleEndian.PutUint32(buf[8:], uint32(ev.Target))
	binary.LittleEndian.PutUint32(buf[12:], uint32(ev.MemPenalty))
	binary.LittleEndian.PutUint64(buf[16:], h.sum)
	if ev.Measured {
		buf[24] = 1
	}
	if ev.Taken {
		buf[25] = 1
	}
	f.Write(buf[:])
	h.sum = f.Sum64()
	h.n++
	if h.next != nil {
		h.next.Retire(ev)
	}
}

// runOutcome is everything one interpreter path produces.
type runOutcome struct {
	gpr       [8]uint32
	mm        [8]uint64
	fp        [8]float64
	mem       []byte
	executed  int64
	report    *profile.Report
	eventHash uint64
	events    uint64
}

func runPath(t *testing.T, prog *asm.Program, generic bool) *runOutcome {
	t.Helper()
	cfg := pentium.DefaultConfig()
	model := pentium.New(cfg)
	model.Bind(prog)
	col := profile.NewCollector(prog, model)
	hasher := &eventHasher{next: col}

	cpu := vm.New(prog)
	cpu.Generic = generic
	cpu.Obs = hasher
	cpu.Hier = mem.NewHierarchy()
	if err := cpu.Run(1 << 31); err != nil {
		t.Fatalf("run (generic=%v): %v", generic, err)
	}

	out := &runOutcome{
		executed:  cpu.Executed(),
		report:    col.Report(prog.Name),
		eventHash: hasher.sum,
		events:    hasher.n,
	}
	for i := 0; i < 8; i++ {
		out.gpr[i] = cpu.GPR(isa.EAX + isa.Reg(i))
		out.mm[i] = uint64(cpu.MM(isa.MM0 + isa.Reg(i)))
		out.fp[i] = cpu.FPReg(isa.FP0 + isa.Reg(i))
	}
	out.report.CacheAccesses = cpu.Hier.Stats.Accesses
	out.report.L1Misses = cpu.Hier.Stats.L1Misses
	out.report.L2Misses = cpu.Hier.Stats.L2Misses
	out.mem = append([]byte(nil), cpu.Mem.Bytes()...)
	return out
}

func TestPredecodedMatchesGeneric(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential run is slow; skipped with -short")
	}
	for _, b := range suite.All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			prog, err := b.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			gen := runPath(t, prog, true)
			pre := runPath(t, prog, false)

			if gen.gpr != pre.gpr {
				t.Errorf("GPRs differ:\n generic %v\n predecoded %v", gen.gpr, pre.gpr)
			}
			if gen.mm != pre.mm {
				t.Errorf("MM registers differ:\n generic %v\n predecoded %v", gen.mm, pre.mm)
			}
			if gen.fp != pre.fp {
				t.Errorf("FP registers differ:\n generic %v\n predecoded %v", gen.fp, pre.fp)
			}
			if gen.executed != pre.executed {
				t.Errorf("executed: generic %d, predecoded %d", gen.executed, pre.executed)
			}
			if gen.events != pre.events || gen.eventHash != pre.eventHash {
				t.Errorf("event streams differ: generic %d events hash %#x, predecoded %d events hash %#x",
					gen.events, gen.eventHash, pre.events, pre.eventHash)
			}
			if !bytes.Equal(gen.mem, pre.mem) {
				for i := range gen.mem {
					if gen.mem[i] != pre.mem[i] {
						t.Errorf("memory images differ first at %#x: generic %#x, predecoded %#x",
							i, gen.mem[i], pre.mem[i])
						break
					}
				}
			}
			if !reflect.DeepEqual(gen.report, pre.report) {
				t.Errorf("reports differ:\n generic %+v\n predecoded %+v", gen.report, pre.report)
			}
		})
	}
}

// TestPredecodedFaultsMatchGeneric checks that the out-of-program control
// transfer fault is identical under both loops.
func TestPredecodedFaultsMatchGeneric(t *testing.T) {
	build := func() *asm.Program {
		b := asm.NewBuilder("fallthrough")
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(1))
		return b.MustLink()
	}
	g := vm.New(build())
	g.Generic = true
	errG := g.Run(100)
	p := vm.New(build())
	errP := p.Run(100)
	if errG == nil || errP == nil {
		t.Fatal("both paths must fault on running off the end")
	}
	if errG.Error() != errP.Error() {
		t.Errorf("fault text differs:\n generic: %v\n predecoded: %v", errG, errP)
	}
}
