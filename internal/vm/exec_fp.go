package vm

import (
	"math"

	"mmxdsp/internal/isa"
)

// execFP executes floating-point instructions against the flat FP register
// file. The FP registers physically alias the MMX registers: executing an
// FP instruction while the machine is in MMX mode (after any MMX
// instruction, before emms) is an error, which models the real Pentium's
// corrupted-FP-stack hazard and forces programs to pay the emms penalty at
// every MMX-to-FP transition, exactly the cost the paper highlights.
func (c *CPU) execFP(in *isa.Inst, ev *Event) error {
	if c.mmxActive {
		return c.fault("floating-point instruction while MMX state active (missing emms)")
	}
	switch in.Op {
	case isa.FLD:
		v, err := c.readFloat(in.B, ev)
		if err != nil {
			return err
		}
		return c.writeFPReg(in.A, v)

	case isa.FLDC:
		if !in.B.IsImm() {
			return c.fault("fldc needs an immediate")
		}
		return c.writeFPReg(in.A, math.Float64frombits(uint64(in.B.Imm)))

	case isa.FST:
		v, err := c.readFPReg(in.B)
		if err != nil {
			return err
		}
		if in.A.IsReg() {
			return c.writeFPReg(in.A, v)
		}
		addr := c.effAddr(in.A)
		c.chargeAccess(addr, ev)
		var ok bool
		switch in.A.Size {
		case isa.SizeD:
			ok = c.Mem.StoreU32(addr, math.Float32bits(float32(v)))
		case isa.SizeQ:
			ok = c.Mem.StoreU64(addr, math.Float64bits(v))
		default:
			return c.fault("fst needs dword or qword destination")
		}
		if !ok {
			return c.fault("fst out of range at %#x", addr)
		}
		return nil

	case isa.FILD:
		if !in.B.IsMem() {
			return c.fault("fild needs a memory source")
		}
		addr := c.effAddr(in.B)
		c.chargeAccess(addr, ev)
		var v float64
		switch in.B.Size {
		case isa.SizeW:
			raw, ok := c.Mem.LoadU16(addr)
			if !ok {
				return c.fault("fild out of range at %#x", addr)
			}
			v = float64(int16(raw))
		case isa.SizeD:
			raw, ok := c.Mem.LoadU32(addr)
			if !ok {
				return c.fault("fild out of range at %#x", addr)
			}
			v = float64(int32(raw))
		default:
			return c.fault("fild needs word or dword source")
		}
		return c.writeFPReg(in.A, v)

	case isa.FIST:
		v, err := c.readFPReg(in.B)
		if err != nil {
			return err
		}
		if !in.A.IsMem() {
			return c.fault("fist needs a memory destination")
		}
		addr := c.effAddr(in.A)
		c.chargeAccess(addr, ev)
		r := math.RoundToEven(v)
		var ok bool
		switch in.A.Size {
		case isa.SizeW:
			ok = c.Mem.StoreU16(addr, uint16(satI16(r)))
		case isa.SizeD:
			ok = c.Mem.StoreU32(addr, uint32(satI32(r)))
		default:
			return c.fault("fist needs word or dword destination")
		}
		if !ok {
			return c.fault("fist out of range at %#x", addr)
		}
		return nil

	case isa.FADD, isa.FSUB, isa.FSUBR, isa.FMUL, isa.FDIV:
		a, err := c.readFPReg(in.A)
		if err != nil {
			return err
		}
		b, err := c.readFloat(in.B, ev)
		if err != nil {
			return err
		}
		var r float64
		switch in.Op {
		case isa.FADD:
			r = a + b
		case isa.FSUB:
			r = a - b
		case isa.FSUBR:
			r = b - a
		case isa.FMUL:
			r = a * b
		case isa.FDIV:
			r = a / b
		}
		return c.writeFPReg(in.A, r)

	case isa.FCHS:
		a, err := c.readFPReg(in.A)
		if err != nil {
			return err
		}
		return c.writeFPReg(in.A, -a)
	case isa.FABS:
		a, err := c.readFPReg(in.A)
		if err != nil {
			return err
		}
		return c.writeFPReg(in.A, math.Abs(a))
	case isa.FSQRT:
		a, err := c.readFPReg(in.A)
		if err != nil {
			return err
		}
		return c.writeFPReg(in.A, math.Sqrt(a))
	case isa.FSIN:
		a, err := c.readFPReg(in.A)
		if err != nil {
			return err
		}
		return c.writeFPReg(in.A, math.Sin(a))
	case isa.FCOS:
		a, err := c.readFPReg(in.A)
		if err != nil {
			return err
		}
		return c.writeFPReg(in.A, math.Cos(a))

	case isa.FCOM:
		// Sets the integer flags like fcomi: ZF on equality, CF on a < b,
		// so the unsigned branch family (jb/ja/jbe/jae/je) tests floats.
		a, err := c.readFPReg(in.A)
		if err != nil {
			return err
		}
		b, err := c.readFloat(in.B, ev)
		if err != nil {
			return err
		}
		c.zf = a == b
		c.cf = a < b
		c.sf = false
		c.of = false
		return nil
	}
	return c.fault("unimplemented FP op %s", in.Op)
}

func (c *CPU) readFPReg(o isa.Operand) (float64, error) {
	if !o.IsReg() || !o.Reg.IsFP() {
		return 0, c.fault("expected FP register, have %s", o)
	}
	return c.fp[o.Reg.FPIndex()], nil
}

func (c *CPU) writeFPReg(o isa.Operand, v float64) error {
	if !o.IsReg() || !o.Reg.IsFP() {
		return c.fault("expected FP register destination, have %s", o)
	}
	c.fp[o.Reg.FPIndex()] = v
	return nil
}

// readFloat reads an FP register or a float32/float64 memory operand.
func (c *CPU) readFloat(o isa.Operand, ev *Event) (float64, error) {
	switch o.Kind {
	case isa.KindReg:
		return c.readFPReg(o)
	case isa.KindMem:
		addr := c.effAddr(o)
		c.chargeAccess(addr, ev)
		switch o.Size {
		case isa.SizeD:
			raw, ok := c.Mem.LoadU32(addr)
			if !ok {
				return 0, c.fault("float load out of range at %#x", addr)
			}
			return float64(math.Float32frombits(raw)), nil
		case isa.SizeQ:
			raw, ok := c.Mem.LoadU64(addr)
			if !ok {
				return 0, c.fault("double load out of range at %#x", addr)
			}
			return math.Float64frombits(raw), nil
		}
		return 0, c.fault("float operand needs dword or qword size")
	}
	return 0, c.fault("bad float operand %s", o)
}

// satI16 converts a rounded float to int16 with saturation (the x87 would
// store the integer-indefinite value on overflow; saturation is the DSP
// convention every program here relies on and is documented in DESIGN.md).
func satI16(v float64) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

func satI32(v float64) int32 {
	if v > 2147483647 {
		return 2147483647
	}
	if v < -2147483648 {
		return -2147483648
	}
	return int32(v)
}
