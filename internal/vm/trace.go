// Trace (superblock) dispatch: the block interpreter lowered one more level.
// At run time the dispatcher counts how often control arrives at each block
// leader over a taken back edge or a trace exit; when a leader crosses the
// hotness threshold, the next pass through it records the chain of basic
// blocks the program actually follows — across taken branches — until the
// chain closes back on its head (a loop trace), repeats a block, grows too
// long, or reaches an untraceable terminator (call/ret/halt/marker). The
// recorded chain is lowered into a superblock: a flat array of micro-ops
// with every conditional branch turned into a side-exit guard that checks
// the recorded direction and falls back to block dispatch when the program
// diverges.
//
// Inside a superblock the hot architectural state — the eight GPRs, the
// eight MMX registers and the four flags — lives in Go locals for the whole
// trace, spilling to the CPU only at side exits, at poll points and around
// the rare fallback micro-op that calls a predecoded handler. Instruction
// budgets stay exact because a trace iteration only begins when it fits the
// remaining budget entirely (the boundary is handled by block dispatch,
// which single-steps); Poll cancellation stays bounded because every
// completed iteration checks the poll clock with fully spilled state.
//
// Observation moves up a level too: a TraceObserver receives one
// ObserveTrace per completed iteration (or ObserveTraceExit at a side
// exit) with the memory penalties of the whole iteration, mirroring how
// ObserveBlock batches a block body. The profile collector prices these
// through chain-level timing schedules (pentium.RetireChain) and falls back
// to exact per-event replay when no schedule applies, so reported results
// stay byte-identical to the other dispatch modes.
//
// Loop traces additionally grow into trace trees: a guard that keeps
// side-exiting — persistently, but below the deopt threshold (a biased but
// not fully-taken inner branch) — records the alternate path from its exit
// target back to the head and attaches it as a child: the guard becomes a
// fork into a second lowered segment that shares the parent's register-cache
// locals and ends in its own iteration boundary. Each root-to-rejoin path is
// registered with the observer under its own id, so tree iterations price
// through the same chain schedules, keyed by the path taken. Tree growth
// mirrors the single-trace policy: a per-guard exit-count threshold with
// exponential backoff on failed formations, a bounded node and op budget,
// and whole-tree abandonment when the root deoptimizes.
package vm

import (
	"math"

	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmx"
)

// Trace-formation tuning.
const (
	// defaultTraceThreshold is how many hot arrivals a block leader needs
	// before recording starts (CPU.TraceThreshold overrides).
	defaultTraceThreshold = 64
	// traceMaxBlocks bounds a recorded chain.
	traceMaxBlocks = 16
	// traceMaxOps bounds the lowered micro-op count.
	traceMaxOps = 512
	// traceMaxAttempts caps the exponent of the re-heat backoff: each
	// failed formation attempt at a head doubles the heat a reformation
	// needs, so a head that keeps producing cold traces retries ever more
	// rarely (sampling a different execution phase each time) without
	// being permanently blacklisted.
	traceMaxAttempts = 6
	// traceMaxUnroll caps the per-block revisit allowance a recording
	// earns from failed attempts, bounding how far a reformation may
	// unroll repeated blocks.
	traceMaxUnroll = 2
	// traceDeoptMinEntries is the sample size before the side-exit-rate
	// deoptimization check applies.
	traceDeoptMinEntries = 64

	// treeGrowThreshold is how many side exits one uJcc guard must take
	// (scaled by the guard's failed-formation backoff, like trace heat)
	// before the alternate path is recorded as a child trace. It sits well
	// under traceDeoptMinEntries so a biased guard grows its alternate arm
	// before the side-exit governor can retire the whole trace.
	treeGrowThreshold = 16
	// treeMaxNodes bounds one trace's tree: root plus children.
	treeMaxNodes = 4
	// treeMaxOps bounds the lowered micro-op total across the whole tree.
	treeMaxOps = 1024
)

// byBlock sentinel states for block leaders without a trace.
const (
	traceNone int32 = -1 // no trace yet; may record
	traceDead int32 = -2 // blacklisted: untraceable or repeatedly failed
)

// traceDynExit marks a chain that ends at a top-level return: the exit
// target is whatever address the ret pops, so the lowered trace ends in a
// computed exit instead of a continuation guard.
const traceDynExit int32 = -1

// TraceObserver is an optional extension of BlockObserver. When a CPU's
// observer implements it (and CPU.Traces is set), Run uses trace dispatch
// and reports whole trace iterations instead of per-block calls.
type TraceObserver interface {
	BlockObserver
	// RegisterTrace announces a newly formed trace: the basic blocks it
	// visits in order (by the numbering of asm.Program.Blocks) and the
	// recorded direction of each block's terminator (false for
	// fall-through blocks, true for unconditional jumps). Slices are only
	// valid for the duration of the call.
	RegisterTrace(id int, blocks []int32, taken []bool)
	// ObserveTrace reports one complete on-trace iteration of trace id:
	// every block body retired in order, every terminator going its
	// recorded direction. penalties holds the cache penalty of each
	// memory-referencing instruction of the whole iteration in retirement
	// order; it is only valid for the duration of the call.
	ObserveTrace(id int, measured bool, penalties []int32)
	// ObserveTraceExit reports a partial iteration ending in a side exit:
	// blocks 0..k retired completely (bodies and terminators), the
	// terminators of blocks 0..k-1 went their recorded direction, and
	// block k's conditional terminator went the opposite way, leaving the
	// trace. penalties covers the retired prefix in retirement order.
	ObserveTraceExit(id int, k int, measured bool, penalties []int32)
}

// TraceStats summarizes trace-tier behavior for one run (diagnostic only —
// reported results are byte-identical across dispatch modes).
type TraceStats struct {
	// Formed is how many traces were recorded and lowered.
	Formed int
	// Iters counts completed on-trace iterations; Exits counts side exits
	// (partial iterations).
	Iters uint64
	Exits uint64
	// TraceInstrs is how many instructions retired inside trace execution.
	TraceInstrs uint64
	// TreeNodes counts child paths attached across all trace trees.
	TreeNodes int
	// Deopts counts traces retired by the side-exit governor.
	Deopts uint64
	// TreeIters counts iterations that completed via a child path;
	// TreeInstrs the instructions those whole iterations retired.
	TreeIters  uint64
	TreeInstrs uint64
}

// SideExitPct returns side exits as a percentage of trace entries.
func (s TraceStats) SideExitPct() float64 {
	total := s.Iters + s.Exits
	if total == 0 {
		return 0
	}
	return 100 * float64(s.Exits) / float64(total)
}

// TraceStats returns the trace-tier statistics of the last Run (zero when
// trace dispatch was not used).
func (c *CPU) TraceStats() TraceStats {
	ts := c.ts
	if ts == nil {
		return TraceStats{}
	}
	return TraceStats{
		Formed:      len(ts.traces),
		Iters:       ts.iters,
		Exits:       ts.exits,
		TraceInstrs: ts.instrs,
		TreeNodes:   ts.treeNodes,
		Deopts:      ts.deopts,
		TreeIters:   ts.treeIters,
		TreeInstrs:  ts.treeInstrs,
	}
}

// Micro-op kinds. Every kind is the data form of one specialized handler
// shape from decode.go; uCall wraps any other handler (spill, call, reload).
const (
	uCall uint8 = iota

	// Integer moves and loads/stores.
	uMovRR
	uMovRI
	uLoad8
	uLoad16
	uLoad32
	uLoadSx8
	uLoadSx16
	uStore8
	uStore16
	uStore32
	uStore8I
	uStore16I
	uStore32I
	uLea
	uZx8
	uZx16
	uSx8
	uSx16
	uXchg
	uPushR
	uPushI
	uPopR

	// ALU: register-register, register-immediate, register-dword-memory.
	uAddRR
	uAddRI
	uAddRM
	uSubRR
	uSubRI
	uSubRM
	uCmpRR
	uCmpRI
	uCmpRM
	uAndRR
	uAndRI
	uAndRM
	uOrRR
	uOrRI
	uOrRM
	uXorRR
	uXorRI
	uXorRM
	uTestRR
	uTestRI
	uTestRM
	uImulRR
	uImulRI
	uImulRM
	uAluMR // op [mem], gpr[s]  (read-modify-write; u.alu selects, u.d is size)
	uAluMI // op [mem], imm2
	uNot
	uNeg
	uInc
	uDec
	uShlI
	uShrI
	uSarI
	uCdq

	// Control: side-exit guard and iteration end. uCallT/uRet inline a
	// direct call (push the static return address; the target is the next
	// chain block) and its return (pop, then guard that the popped address
	// is the recorded continuation — a mismatch is a side exit).
	uJcc
	uEnd
	uCallT
	uRet

	// MMX.
	uMovdGM // mm[d] = zext gpr[s]
	uMovdMG // gpr[d] = low32 mm[s]
	uMovdLM // mm[d] = zext load32 [mem]
	uMovdSM // store32 [mem] = low32 mm[s]
	uMovqRR
	uMovqLM64
	uMovqLM32
	uMovqSM
	uMMXBinRR
	uMMXBinRM64
	uMMXBinRM32
	uMMXShiftI
	uMMXShiftRR
	uEmms

	// Floating point (registers stay in CPU state; every op re-checks the
	// mmx-active fault exactly like the closures).
	uFMovRR
	uFLoad32
	uFLoad64
	uFConst
	uFArithRR
	uFArithM32
	uFArithM64
	uFComRR
	uFComM32
	uFComM64
)

// Condition codes for uJcc (lowered from the conditional-branch opcode).
const (
	ccE uint8 = iota
	ccNE
	ccL
	ccLE
	ccG
	ccGE
	ccB
	ccBE
	ccA
	ccAE
	ccS
	ccNS
)

// ALU sub-ops for the read-modify-write uAluMR/uAluMI micro-ops. cmp and
// test read without writing back (single access charge, like the closures).
const (
	aluAdd uint8 = iota
	aluSub
	aluCmp
	aluAnd
	aluTest
	aluOr
	aluXor
	aluImul
)

// FP arithmetic sub-ops for uFArith*.
const (
	fpAdd uint8 = iota
	fpSub
	fpSubR
	fpMul
	fpDiv
)

// noIdx marks an absent base/index register in a memory micro-op.
const noIdx uint8 = 0xFF

// uop is one trace micro-op. Memory operands are flattened into
// base/index/scale/disp fields; register indices into d (destination) and s
// (source). The meaning of the remaining fields depends on kind.
type uop struct {
	kind uint8
	d, s uint8
	// alu carries the uJcc condition code or the uFArith sub-op.
	alu uint8
	// b/x/scale/imm encode a memory address (imm doubles as the ALU/move
	// immediate); imm2 is the store-immediate value.
	b, x  uint8
	scale uint32
	imm   uint32
	imm2  uint32
	// expect is the recorded direction of a uJcc, or the loop flag of uEnd.
	expect bool
	// refsMem/mmx describe a uCall'd handler (penalty slot, mm spill).
	refsMem bool
	mmx     bool
	// pc is the originating instruction (fault context, side-exit
	// fall-through); tgt the branch target (uJcc) or exit PC (uEnd).
	pc  int32
	tgt int32
	// blockK is the index within the trace of the block owning a
	// uJcc/uEnd; cum is the instruction count retired once that block
	// completes (from trace entry).
	blockK int32
	cum    int64
	// pathIdx tags control ops (uJcc/uRet/uEnd) with the tree path they
	// retire against (0 = root). On a uJcc guard, child/childPath point at
	// an attached alternate-path segment (child 0 = none); until one
	// attaches, d counts failed child formations (the backoff exponent)
	// and imm2 counts side exits toward the growth threshold — both
	// otherwise unused by uJcc.
	pathIdx   uint16
	childPath uint16
	child     int32
	// fv is the uFConst value; mfn/sfn the MMX binary/shift functions;
	// exec the wrapped handler of a uCall.
	fv   float64
	mfn  func(a, b mmx.Reg) mmx.Reg
	sfn  func(v mmx.Reg, n uint) mmx.Reg
	exec execFn
}

// vmTrace is one lowered superblock, possibly grown into a tree: child
// segments are appended after the root's uEnd and entered through fork
// guards; each root-to-rejoin path is registered separately.
type vmTrace struct {
	// id is the observation id handed to RegisterTrace/Observe*; slot the
	// trace's index in traceState.traces (what byBlock stores). The two
	// diverge once child paths consume observation ids.
	id        int
	slot      int32
	head      int32 // entry PC (a block leader)
	headBlock int32
	blocks    []int32
	taken     []bool
	ops       []uop
	// paths describes the tree: nil for a plain superblock; once a child
	// attaches, paths[0] is the root path and each attachment appends the
	// combined shared-prefix-plus-alternate-arm path.
	paths []tracePath
	// nInstrs is the instruction count of one full iteration (bodies,
	// NOPs and terminators).
	nInstrs int64
	loop    bool
	// exitPC is where a full iteration of a non-loop trace continues
	// (traceDynExit when the chain ends at a top-level ret); the head for
	// loop traces. Child arms rejoin or exit at the same point.
	exitPC int32
	iters  uint64
	exits  uint64
}

// tracePath is one registered root-to-rejoin path through a trace tree: the
// shared block prefix up to a fork guard (with that guard's direction
// inverted), then the recorded alternate arm back to the head.
type tracePath struct {
	id     int
	blocks []int32
	taken  []bool
	// nInstrs is the full iteration instruction count along this path.
	nInstrs int64
}

// pathID resolves a control op's path tag to its observation id.
func (tr *vmTrace) pathID(idx uint16) int {
	if idx == 0 {
		return tr.id
	}
	return tr.paths[idx].id
}

// traceRec is the single active chain recording.
type traceRec struct {
	active bool
	head   int32
	blocks []int32
	taken  []bool
	// depth tracks call nesting along the chain: rets that match an
	// earlier recorded call keep the chain growing (their continuation
	// guard is the statically pushed return address); a top-level ret
	// ends the chain with a computed exit.
	depth int32
	// child marks an alternate-arm recording for an existing trace: parent
	// is that trace's slot and parentOp the fork guard's op index. The arm
	// attaches when it reaches childStop (the parent's head for a loop
	// trace, its exit continuation otherwise) or, when childStop is
	// traceDynExit (a tail-return parent), at the arm's first top-level
	// ret; anything else fails the recording with per-guard backoff.
	child     bool
	parent    int32
	parentOp  int32
	childStop int32
}

// traceState is the per-run trace machinery hanging off a CPU.
type traceState struct {
	threshold uint32
	// heat counts hot arrivals per block leader; byBlock maps a leader's
	// block to its trace id (or traceNone/traceDead); attempts counts
	// failed formations toward the blacklist.
	heat     []uint32
	byBlock  []int32
	attempts []uint8
	traces   []*vmTrace
	rec      traceRec
	// ev is the reusable event uCall handlers write penalties into;
	// penbuf the reusable penalty accumulator.
	ev     Event
	penbuf []int32
	// nextID allocates dense observation ids across roots and child paths.
	nextID int
	// Run statistics (see TraceStats).
	iters      uint64
	exits      uint64
	instrs     uint64
	treeNodes  int
	deopts     uint64
	treeIters  uint64
	treeInstrs uint64
}

// traceInit builds (once) the per-run trace state.
func (c *CPU) traceInit() *traceState {
	if c.ts != nil {
		return c.ts
	}
	th := c.TraceThreshold
	if th <= 0 {
		th = defaultTraceThreshold
	}
	n := len(c.code.blocks)
	ts := &traceState{
		threshold: uint32(th),
		heat:      make([]uint32, n),
		byBlock:   make([]int32, n),
		attempts:  make([]uint8, n),
	}
	for i := range ts.byBlock {
		ts.byBlock[i] = traceNone
	}
	c.ts = ts
	return ts
}

// bump counts a hot arrival at target (a taken back edge or a trace exit)
// and starts recording when the leader crosses the threshold.
func (ts *traceState) bump(c *CPU, target int) {
	code := c.code
	if target < 0 || target >= len(code.blockOf) {
		return
	}
	bi := int(code.blockOf[target])
	if int(code.blocks[bi].start) != target || ts.byBlock[bi] != traceNone {
		return
	}
	h := ts.heat[bi] + 1
	ts.heat[bi] = h
	if h >= ts.threshold<<ts.attempts[bi] && !ts.rec.active {
		ts.rec.active = true
		ts.rec.child = false
		ts.rec.head = int32(target)
		ts.rec.blocks = ts.rec.blocks[:0]
		ts.rec.taken = ts.rec.taken[:0]
		ts.rec.depth = 0
	}
}

// record appends one completed block (with its terminator's direction) to
// the active chain.
func (ts *traceState) record(bi int, taken bool) {
	ts.rec.blocks = append(ts.rec.blocks, int32(bi))
	ts.rec.taken = append(ts.rec.taken, taken)
}

// noteFail counts a failed formation attempt, doubling the heat the head
// needs before the next recording (capped exponential backoff).
func (ts *traceState) noteFail(hb int) {
	if ts.attempts[hb] < traceMaxAttempts {
		ts.attempts[hb]++
	}
}

// abandonRec drops the active recording without forming a trace (budget
// squeeze or mid-block entry broke the chain).
func (c *CPU) abandonRec(ts *traceState) {
	rec := &ts.rec
	if !rec.active {
		return
	}
	if rec.child {
		c.failChild(ts)
		return
	}
	rec.active = false
	ts.heat[c.code.blockOf[rec.head]] = 0
}

// traceableBlock reports whether a block may join a chain: fall-through
// blocks and blocks ending in a direct jump, conditional branch, call or
// return. Calls inline into the chain (the recorded path runs through the
// callee); returns carry a target guard. Halts and profiling markers end
// the chain before the block.
func traceableBlock(code *Code, b *vmBlock) bool {
	switch b.termKind {
	case termNone:
		return true
	case termCtl:
		op := code.ops[b.term].inst.Op
		return op == isa.JMP || op.IsBranch() || op == isa.CALL || op == isa.RET
	}
	return false
}

// finalizeRec closes the active recording into a trace. loop marks a chain
// that closed on its own head; exitPC is where execution continues after a
// full iteration of a non-loop chain.
func (c *CPU) finalizeRec(ts *traceState, tobs TraceObserver, loop bool, exitPC int32) {
	rec := &ts.rec
	rec.active = false
	hb := int(c.code.blockOf[rec.head])
	ts.heat[hb] = 0
	if len(rec.blocks) == 0 || ts.byBlock[hb] != traceNone {
		return
	}
	tr := c.lowerTrace(rec.blocks, rec.taken, loop, exitPC)
	if tr == nil {
		ts.noteFail(hb)
		return
	}
	tr.slot = int32(len(ts.traces))
	tr.id = ts.nextID
	ts.nextID++
	tr.head = rec.head
	tr.headBlock = int32(hb)
	ts.traces = append(ts.traces, tr)
	ts.byBlock[hb] = tr.slot
	if tobs != nil {
		tobs.RegisterTrace(tr.id, tr.blocks, tr.taken)
	}
}

// recCheck decides, when a full block is about to dispatch while recording,
// whether the chain closes (loop), ends before this block, or keeps
// growing. It may leave the recording inactive.
//
// Revisits: each failed formation attempt at the recording's head raises a
// per-block revisit allowance by one, so a short-trip loop whose one-
// revolution trace deoptimized reforms as an unrolled chain — recording
// keeps going through the repeated blocks until it arrives back at the
// head past the allowance, by which point the chain spans a full outer
// revolution and its guards match the trip pattern.
func (c *CPU) recCheck(ts *traceState, tobs TraceObserver, bi int, b *vmBlock) {
	rec := &ts.rec
	if rec.child {
		// An alternate-arm recording attaches only by reaching the
		// parent's rejoin point (head for loops, the exit continuation
		// otherwise); a revisited block, an oversized chain or an
		// untraceable terminator fails it with per-guard backoff rather
		// than forming a separate trace.
		if rec.childStop >= 0 && b.start == rec.childStop && len(rec.blocks) > 0 {
			c.attachChild(ts, tobs, false)
			return
		}
		for _, pb := range rec.blocks {
			if int(pb) == bi {
				c.failChild(ts)
				return
			}
		}
		if len(rec.blocks) >= traceMaxBlocks || !traceableBlock(c.code, b) {
			c.failChild(ts)
		}
		return
	}
	allow := int(ts.attempts[c.code.blockOf[rec.head]])
	if allow > traceMaxUnroll {
		allow = traceMaxUnroll
	}
	seen := 0
	for _, pb := range rec.blocks {
		if int(pb) == bi {
			seen++
		}
	}
	if b.start == rec.head && len(rec.blocks) > 0 {
		if seen > allow {
			c.finalizeRec(ts, tobs, true, rec.head)
			return
		}
	} else if seen > allow {
		c.finalizeRec(ts, tobs, false, b.start)
		return
	}
	if len(rec.blocks) >= traceMaxBlocks {
		c.finalizeRec(ts, tobs, false, b.start)
		return
	}
	if !traceableBlock(c.code, b) {
		if len(rec.blocks) > 0 {
			c.finalizeRec(ts, tobs, false, b.start)
			return
		}
		// The head itself cannot anchor a trace; never try again.
		rec.active = false
		hb := int(c.code.blockOf[rec.head])
		ts.heat[hb] = 0
		ts.byBlock[hb] = traceDead
	}
}

// maybeDeopt retires a trace whose side-exit rate shows the recorded path
// went cold: the head returns to the heat-counting pool (and eventually the
// blacklist if reformation keeps failing). A loop trace exits once per
// activation by construction — its terminating branch is a side exit — so
// the cold signal there is failing to complete even one revolution per
// entry (iters < exits), not the raw exit share, which for a short
// trip-count loop is high even when the trace is profitable.
func (ts *traceState) maybeDeopt(tr *vmTrace) {
	entries := tr.iters + tr.exits
	if entries < traceDeoptMinEntries {
		return
	}
	hb := int(tr.headBlock)
	if tr.loop {
		// A loop trace exits once per activation by construction, so the
		// raw exit share is misleading: even a trip-2 loop (iters ≈ exits)
		// beats block dispatch, since the exiting revolution's body still
		// retires in-trace. Deopt only when activations usually leave
		// before half a revolution — the recorded path went genuinely cold.
		if tr.iters*2 >= tr.exits {
			return
		}
	} else if tr.exits*10 <= entries*6 {
		return
	}
	if ts.byBlock[hb] == tr.slot {
		// The whole tree retires with the root; a reformed trace starts
		// over as a plain superblock and regrows children on demand.
		ts.byBlock[hb] = traceNone
		ts.heat[hb] = 0
		ts.noteFail(hb)
		ts.deopts++
	}
}

// runTrace is the trace-dispatch inner loop: block dispatch (run the body,
// retire the terminator per-event) plus heat counting, chain recording and
// superblock execution at hot leaders. tobs may be nil (no observation).
func (c *CPU) runTrace(maxInstrs int64, tobs TraceObserver) error {
	code := c.code
	ops := code.ops
	ts := c.traceInit()
	var ev Event
	var penbuf []int32
	pollAt := c.pollStart()
	for !c.halted {
		if c.executed >= pollAt {
			if err := c.Poll(); err != nil {
				return c.abort(err)
			}
			pollAt = c.executed + c.pollInterval()
		}
		pc := c.pc
		if pc < 0 || pc >= len(ops) {
			return c.fault("control transferred outside program (pc=%d)", pc)
		}
		bi := int(code.blockOf[pc])
		b := &code.blocks[bi]
		if int(b.start) == pc {
			if ts.rec.active {
				// May close the chain into a trace for this very leader,
				// which the next check then executes immediately.
				c.recCheck(ts, tobs, bi, b)
			}
			if tid := ts.byBlock[bi]; tid >= 0 && !ts.rec.active {
				// While a chain is being recorded, existing traces are NOT
				// entered: the recording runs through their blocks under
				// block dispatch so a longer chain (an outer loop spanning
				// inner-loop traces) can form without being chopped at every
				// inner head. Recording is rare; the slower pass is noise.
				tr := ts.traces[tid]
				if c.executed+tr.nInstrs <= maxInstrs {
					if err := c.execTrace(tr, ts, maxInstrs, tobs, &pollAt); err != nil {
						return err
					}
					// A trace exit is a chain exit: its target competes to
					// become the next trace head.
					ts.bump(c, c.pc)
					continue
				}
			}
		}
		if int(b.start) != pc || c.executed+b.nInstrs > maxInstrs {
			// Mid-block entry (a ret popped a non-leader address) or not
			// enough budget for the whole block: single-step so budget
			// faults land on exactly the right instruction. Either way the
			// chain being recorded is broken.
			c.abandonRec(ts)
			if err := c.stepDecoded(maxInstrs, &ev); err != nil {
				return err
			}
			continue
		}
		if b.fused {
			c.executed += b.nBody
			for _, fn := range b.execs {
				if err := fn(c, &ev); err != nil {
					return err
				}
			}
			if tobs != nil && b.events > 0 {
				tobs.ObserveBlock(bi, c.measuring, nil)
			}
		} else {
			c.executed += b.nBody
			pen := penbuf[:0]
			for i := range b.steps {
				s := &b.steps[i]
				c.pc = int(s.pc)
				if s.refsMem {
					ev.MemPenalty = 0
					if err := s.exec(c, &ev); err != nil {
						return err
					}
					pen = append(pen, int32(ev.MemPenalty))
				} else if err := s.exec(c, &ev); err != nil {
					return err
				}
			}
			penbuf = pen
			if tobs != nil && b.events > 0 {
				tobs.ObserveBlock(bi, c.measuring, pen)
			}
		}
		switch b.termKind {
		case termNone:
			c.pc = int(b.end)
			if ts.rec.active {
				ts.record(bi, false)
			}
		case termProfOn:
			c.executed++
			c.measuring = true
			c.pc = int(b.end)
		case termProfOff:
			c.executed++
			c.measuring = false
			c.pc = int(b.end)
		default: // termCtl
			tpc := int(b.term)
			c.executed++
			c.pc = tpc
			d := &ops[tpc]
			ev = Event{PC: tpc, Inst: d.inst, Measured: c.measuring}
			if err := d.exec(c, &ev); err != nil {
				return err
			}
			if !ev.Taken {
				c.pc++
			}
			ev.Target = c.pc
			if c.Obs != nil {
				c.Obs.Retire(ev)
			}
			if ts.rec.active {
				ts.record(bi, ev.Taken)
				switch d.inst.Op {
				case isa.CALL:
					ts.rec.depth++
				case isa.RET:
					if ts.rec.depth > 0 {
						ts.rec.depth--
					} else if ts.rec.child {
						if ts.rec.childStop == traceDynExit {
							// The parent ends at a computed-exit ret; so
							// does this arm — attach it as a tail path.
							c.attachChild(ts, tobs, true)
						}
						// Otherwise a fork below an inlined call leaves the
						// arm's call nesting unknowable; the ret lowers as
						// a continuation guard and recording continues.
					} else {
						// Top-level return: the continuation differs per
						// call site, so close the chain here with a
						// computed exit rather than a guard.
						c.finalizeRec(ts, tobs, false, traceDynExit)
					}
				}
			}
			if ev.Taken && (c.pc < tpc || d.inst.Op == isa.CALL) {
				// Taken back edge (the classic loop-head signal) or a call:
				// function entries anchor tail-return traces.
				ts.bump(c, c.pc)
			}
		}
	}
	return nil
}

// condCode lowers a conditional-branch opcode to a uJcc condition code.
func condCode(op isa.Op) (uint8, bool) {
	switch op {
	case isa.JE:
		return ccE, true
	case isa.JNE:
		return ccNE, true
	case isa.JL:
		return ccL, true
	case isa.JLE:
		return ccLE, true
	case isa.JG:
		return ccG, true
	case isa.JGE:
		return ccGE, true
	case isa.JB:
		return ccB, true
	case isa.JBE:
		return ccBE, true
	case isa.JA:
		return ccA, true
	case isa.JAE:
		return ccAE, true
	case isa.JS:
		return ccS, true
	case isa.JNS:
		return ccNS, true
	}
	return 0, false
}

// memRef starts a memory micro-op from an operand's address shape. The
// second result is false when the shape is not a plain GPR-addressed form.
func memRef(o isa.Operand, pc int32) (uop, bool) {
	u := uop{b: noIdx, x: noIdx, scale: 1, imm: uint32(o.Disp), pc: pc}
	if o.Reg != isa.NoReg {
		if !o.Reg.IsGPR() {
			return u, false
		}
		u.b = uint8(o.Reg.GPRIndex())
	}
	if o.Index != isa.NoReg {
		if !o.Index.IsGPR() {
			return u, false
		}
		u.x = uint8(o.Index.GPRIndex())
		if o.Scale != 0 {
			u.scale = uint32(o.Scale)
		}
	}
	return u, true
}

// uCallOp wraps an instruction's predecoded handler as a fallback micro-op.
func uCallOp(d *decoded, pc int32) uop {
	return uop{
		kind:    uCall,
		exec:    d.exec,
		refsMem: d.refsMem,
		mmx:     d.inst.Op.IsMMX(),
		pc:      pc,
	}
}

// lowerTrace lowers a recorded chain into a superblock, or returns nil when
// the chain cannot be lowered (oversized, or an unexpected terminator).
func (c *CPU) lowerTrace(blocks []int32, taken []bool, loop bool, exitPC int32) *vmTrace {
	tr := &vmTrace{
		blocks: append([]int32(nil), blocks...),
		taken:  append([]bool(nil), taken...),
		loop:   loop,
		exitPC: exitPC,
	}
	dynTail := !loop && exitPC == traceDynExit
	ops, cum, ok := c.lowerBlocks(nil, blocks, taken, 0, 0, 0, exitPC, dynTail, traceMaxOps)
	if !ok {
		return nil
	}
	tr.ops = append(ops, uop{
		kind:   uEnd,
		expect: loop,
		tgt:    exitPC,
		blockK: int32(len(blocks) - 1),
		cum:    cum,
	})
	tr.nInstrs = cum
	return tr
}

// lowerBlocks lowers a run of chain blocks, appending micro-ops to ops.
// baseK/baseCum seat the run at a position within a (possibly longer) path:
// emitted uJcc/uRet blockK and cum fields are offset by them, and pathIdx
// tags the control ops with the owning tree path. contPC is where execution
// continues after the last block (the loop head, or a non-loop trace's
// recorded successor); dynTail marks a chain ending at a top-level ret
// (computed exit, no continuation guard). Returns the extended op slice, the
// cumulative instruction count through the run, and ok=false when the run
// cannot be lowered (oversized past maxOps, or an unexpected terminator).
func (c *CPU) lowerBlocks(ops []uop, blocks []int32, taken []bool, baseK int32, baseCum int64, pathIdx uint16, contPC int32, dynTail bool, maxOps int) ([]uop, int64, bool) {
	code := c.code
	cum := baseCum
	for k, bi := range blocks {
		b := &code.blocks[bi]
		for pc := b.start; pc < b.bodyEnd; pc++ {
			d := &code.ops[pc]
			if d.kind != dNormal {
				continue
			}
			in := d.inst
			if in.Op == isa.JMP || in.Op.IsBranch() || in.Op == isa.CALL ||
				in.Op == isa.RET || in.Op == isa.HALT {
				// Control flow inside a block body cannot happen; decline
				// rather than mis-lower if it ever does.
				return ops, 0, false
			}
			u, emit := lowerInst(d, pc)
			if emit {
				ops = append(ops, u)
			}
		}
		cum += b.nInstrs
		if b.termKind == termCtl {
			in := code.ops[b.term].inst
			switch {
			case in.Op == isa.JMP:
				// Static target: the next chain block. No executor work.
			case in.Op == isa.CALL:
				// Inlined call: push the return address and fall into the
				// callee, which is the next chain block. No guard — the
				// target is static.
				ops = append(ops, uop{
					kind: uCallT,
					imm2: uint32(b.term + 1),
					pc:   b.term,
				})
			case in.Op == isa.RET:
				// Inlined return. Mid-chain (or loop-closing) rets guard the
				// popped address against the recorded continuation; a chain
				// that ends at a top-level ret instead finishes the
				// iteration with a computed exit to wherever the ret pops
				// (expect set) — the continuation legitimately differs per
				// call site, so a guard would side-exit constantly.
				if k == len(blocks)-1 && dynTail {
					ops = append(ops, uop{
						kind:    uRet,
						expect:  true,
						pc:      b.term,
						blockK:  baseK + int32(k),
						cum:     cum,
						pathIdx: pathIdx,
					})
					break
				}
				next := contPC
				if k+1 < len(blocks) {
					next = code.blocks[blocks[k+1]].start
				}
				if next < 0 {
					return ops, 0, false
				}
				ops = append(ops, uop{
					kind:    uRet,
					imm:     uint32(next),
					pc:      b.term,
					blockK:  baseK + int32(k),
					cum:     cum,
					pathIdx: pathIdx,
				})
			default:
				cc, ok := condCode(in.Op)
				if !ok {
					return ops, 0, false
				}
				ops = append(ops, uop{
					kind:    uJcc,
					alu:     cc,
					expect:  taken[k],
					pc:      b.term,
					tgt:     in.Target,
					blockK:  baseK + int32(k),
					cum:     cum,
					pathIdx: pathIdx,
				})
			}
		} else if b.termKind != termNone {
			return ops, 0, false
		}
		if len(ops) > maxOps {
			return ops, 0, false
		}
	}
	return ops, cum, true
}

// guardFail counts a failed child formation at a fork guard: exponential
// backoff on the growth threshold, mirroring noteFail for trace heads. A
// guard that exhausts traceMaxAttempts stops trying permanently (its plain
// side exit stays exact; only the optimization is given up).
func guardFail(u *uop) {
	if u.d < traceMaxAttempts {
		u.d++
	}
	u.imm2 = 0
}

// failChild abandons an active alternate-arm recording with per-guard
// backoff.
func (c *CPU) failChild(ts *traceState) {
	rec := &ts.rec
	rec.active, rec.child = false, false
	tr := ts.traces[rec.parent]
	guardFail(&tr.ops[rec.parentOp])
}

// attachChild closes an alternate-arm recording that reached its rejoin
// point (tail marks an arm that ended at a top-level ret instead).
func (c *CPU) attachChild(ts *traceState, tobs TraceObserver, tail bool) {
	rec := &ts.rec
	rec.active, rec.child = false, false
	c.attachChildSeg(ts, tobs, ts.traces[rec.parent], rec.parentOp, rec.blocks, rec.taken, tail)
}

// attachChildSeg lowers a recorded alternate arm (possibly empty, when the
// fork jumps straight to the rejoin point) and attaches it to tr's fork
// guard as a child path: the lowered segment is appended after the existing
// ops, ending the iteration the same way the root does — a looping uEnd for
// a loop trace, a straight exit to the root's continuation, or (tail) a
// computed-exit ret. The combined path is registered with the observer
// under a fresh observation id and the guard becomes a fork into the
// segment. Lowering failure takes formation backoff at the guard instead.
func (c *CPU) attachChildSeg(ts *traceState, tobs TraceObserver, tr *vmTrace, forkOp int32, blocks []int32, taken []bool, tail bool) {
	fork := &tr.ops[forkOp]
	if tr.paths == nil {
		tr.paths = append(tr.paths, tracePath{
			id: tr.id, blocks: tr.blocks, taken: tr.taken, nInstrs: tr.nInstrs,
		})
	}
	parent := &tr.paths[fork.pathIdx]
	k := int(fork.blockK)
	nb := make([]int32, 0, k+1+len(blocks))
	nb = append(append(nb, parent.blocks[:k+1]...), blocks...)
	ntk := make([]bool, 0, cap(nb))
	ntk = append(append(ntk, parent.taken[:k+1]...), taken...)
	ntk[k] = !fork.expect
	newIdx := uint16(len(tr.paths))
	segStart := len(tr.ops)
	cont := tr.head
	if !tr.loop {
		cont = tr.exitPC
	}
	ops, cum, ok := c.lowerBlocks(tr.ops, blocks, taken, int32(k+1), fork.cum, newIdx, cont, tail, treeMaxOps)
	if !ok {
		guardFail(fork)
		return
	}
	if !tail {
		// A tail arm's closing uRet already observes and exits; every
		// other arm ends its iteration with a uEnd mirroring the root's.
		ops = append(ops, uop{
			kind:    uEnd,
			expect:  tr.loop,
			tgt:     cont,
			blockK:  int32(len(nb) - 1),
			cum:     cum,
			pathIdx: newIdx,
		})
	}
	tr.ops = ops
	tr.paths = append(tr.paths, tracePath{id: ts.nextID, blocks: nb, taken: ntk, nInstrs: cum})
	if tobs != nil {
		tobs.RegisterTrace(ts.nextID, nb, ntk)
	}
	ts.nextID++
	// The appends may have moved the op array: re-resolve the fork before
	// flipping it into a child entry.
	fork = &tr.ops[forkOp]
	fork.child = int32(segStart)
	fork.childPath = newIdx
	fork.imm2 = 0
	ts.treeNodes++
}

// growChild runs after a uJcc side exit from a still-live trace: it counts
// the exit against the guard and, past the backoff-scaled threshold, starts
// recording the alternate path — or attaches it immediately when the exit
// jumps straight to the rejoin point (an empty arm).
func (c *CPU) growChild(ts *traceState, tobs TraceObserver, tr *vmTrace, exitOp int32) {
	u := &tr.ops[exitOp]
	if u.child != 0 || u.d >= traceMaxAttempts {
		return
	}
	u.imm2++
	if u.imm2 < treeGrowThreshold<<u.d {
		return
	}
	nodes := len(tr.paths)
	if nodes == 0 {
		nodes = 1
	}
	if nodes >= treeMaxNodes || len(tr.ops) >= treeMaxOps {
		// Tree is full: stop counting at this guard for good.
		u.d = traceMaxAttempts
		return
	}
	stop := tr.head
	if !tr.loop {
		stop = tr.exitPC
	}
	target := c.pc
	if stop >= 0 && int32(target) == stop {
		c.attachChildSeg(ts, tobs, tr, exitOp, nil, nil, false)
		return
	}
	code := c.code
	if target < 0 || target >= len(code.blockOf) {
		guardFail(u)
		return
	}
	bi := int(code.blockOf[target])
	if int(code.blocks[bi].start) != target {
		// A mid-block exit target cannot anchor an arm recording.
		guardFail(u)
		return
	}
	rec := &ts.rec
	rec.active, rec.child = true, true
	rec.head = tr.head
	rec.parent = tr.slot
	rec.parentOp = exitOp
	rec.childStop = stop
	rec.blocks = rec.blocks[:0]
	rec.taken = rec.taken[:0]
	rec.depth = 0
}

// lowerInst lowers one body instruction to a micro-op. The second result is
// false when the instruction needs no executor work at all (a masked-to-zero
// shift, whose closure is a no-op). Native lowering requires d.spec — the
// specializer already validated the operand shape — and mirrors the exact
// semantics, fault texts and penalty-charging order of the corresponding
// closure; every other shape wraps its handler in a uCall.
func lowerInst(d *decoded, pc int32) (uop, bool) {
	in := d.inst
	if !d.spec {
		return uCallOp(d, pc), true
	}
	switch in.Op {
	case isa.MOV:
		if dr := gprDst(in.A); dr >= 0 {
			if sr := gprDst(in.B); sr >= 0 {
				return uop{kind: uMovRR, d: uint8(dr), s: uint8(sr), pc: pc}, true
			}
			if in.B.Kind == isa.KindImm {
				return uop{kind: uMovRI, d: uint8(dr), imm: uint32(in.B.Imm), pc: pc}, true
			}
			if u, ok := memRef(in.B, pc); ok {
				switch in.B.Size {
				case isa.SizeB:
					u.kind = uLoad8
				case isa.SizeW:
					u.kind = uLoad16
				case isa.SizeD, isa.SizeNone:
					u.kind = uLoad32
				default:
					return uCallOp(d, pc), true
				}
				u.d = uint8(dr)
				return u, true
			}
			return uCallOp(d, pc), true
		}
		if in.A.IsMem() {
			if u, ok := memRef(in.A, pc); ok {
				if sr := gprDst(in.B); sr >= 0 {
					switch in.A.Size {
					case isa.SizeB:
						u.kind = uStore8
					case isa.SizeW:
						u.kind = uStore16
					case isa.SizeD, isa.SizeNone:
						u.kind = uStore32
					default:
						return uCallOp(d, pc), true
					}
					u.s = uint8(sr)
					return u, true
				}
				if in.B.Kind == isa.KindImm {
					switch in.A.Size {
					case isa.SizeB:
						u.kind = uStore8I
					case isa.SizeW:
						u.kind = uStore16I
					case isa.SizeD, isa.SizeNone:
						u.kind = uStore32I
					default:
						return uCallOp(d, pc), true
					}
					u.imm2 = uint32(in.B.Imm)
					return u, true
				}
			}
		}
		return uCallOp(d, pc), true

	case isa.MOVZXB, isa.MOVZXW, isa.MOVSXB, isa.MOVSXW:
		dr := gprDst(in.A)
		if dr < 0 {
			return uCallOp(d, pc), true
		}
		if sr := gprDst(in.B); sr >= 0 {
			var k uint8
			switch in.Op {
			case isa.MOVZXB:
				k = uZx8
			case isa.MOVZXW:
				k = uZx16
			case isa.MOVSXB:
				k = uSx8
			default:
				k = uSx16
			}
			return uop{kind: k, d: uint8(dr), s: uint8(sr), pc: pc}, true
		}
		if in.B.IsMem() {
			if u, ok := memRef(in.B, pc); ok {
				// The extend closures force the load width from the opcode.
				switch in.Op {
				case isa.MOVZXB:
					u.kind = uLoad8
				case isa.MOVZXW:
					u.kind = uLoad16
				case isa.MOVSXB:
					u.kind = uLoadSx8
				default:
					u.kind = uLoadSx16
				}
				u.d = uint8(dr)
				return u, true
			}
		}
		return uCallOp(d, pc), true

	case isa.LEA:
		dr := gprDst(in.A)
		if dr < 0 {
			return uCallOp(d, pc), true
		}
		if u, ok := memRef(in.B, pc); ok {
			u.kind = uLea
			u.d = uint8(dr)
			return u, true
		}
		return uCallOp(d, pc), true

	case isa.XCHG:
		return uop{
			kind: uXchg,
			d:    uint8(in.A.Reg.GPRIndex()),
			s:    uint8(in.B.Reg.GPRIndex()),
			pc:   pc,
		}, true

	case isa.PUSH:
		if sr := gprDst(in.A); sr >= 0 {
			return uop{kind: uPushR, s: uint8(sr), pc: pc}, true
		}
		if in.A.Kind == isa.KindImm {
			return uop{kind: uPushI, imm: uint32(in.A.Imm), pc: pc}, true
		}
		return uCallOp(d, pc), true
	case isa.POP:
		if dr := gprDst(in.A); dr >= 0 {
			return uop{kind: uPopR, d: uint8(dr), pc: pc}, true
		}
		return uCallOp(d, pc), true

	case isa.ADD, isa.SUB, isa.CMP, isa.AND, isa.TEST, isa.OR, isa.XOR, isa.IMUL:
		var rr, ri, rm uint8
		switch in.Op {
		case isa.ADD:
			rr, ri, rm = uAddRR, uAddRI, uAddRM
		case isa.SUB:
			rr, ri, rm = uSubRR, uSubRI, uSubRM
		case isa.CMP:
			rr, ri, rm = uCmpRR, uCmpRI, uCmpRM
		case isa.AND:
			rr, ri, rm = uAndRR, uAndRI, uAndRM
		case isa.TEST:
			rr, ri, rm = uTestRR, uTestRI, uTestRM
		case isa.OR:
			rr, ri, rm = uOrRR, uOrRI, uOrRM
		case isa.XOR:
			rr, ri, rm = uXorRR, uXorRI, uXorRM
		default:
			rr, ri, rm = uImulRR, uImulRI, uImulRM
		}
		dr := gprDst(in.A)
		if dr < 0 {
			if u, ok := lowerALUMem(in, pc); ok {
				return u, true
			}
			return uCallOp(d, pc), true
		}
		if in.B.Kind == isa.KindImm {
			return uop{kind: ri, d: uint8(dr), imm: uint32(in.B.Imm), pc: pc}, true
		}
		if sr := gprDst(in.B); sr >= 0 {
			return uop{kind: rr, d: uint8(dr), s: uint8(sr), pc: pc}, true
		}
		if in.B.IsMem() && (in.B.Size == isa.SizeD || in.B.Size == isa.SizeNone) {
			if u, ok := memRef(in.B, pc); ok {
				u.kind = rm
				u.d = uint8(dr)
				return u, true
			}
		}
		return uCallOp(d, pc), true

	case isa.NOT:
		return uop{kind: uNot, d: uint8(gprDst(in.A)), pc: pc}, true
	case isa.NEG:
		return uop{kind: uNeg, d: uint8(gprDst(in.A)), pc: pc}, true
	case isa.INC:
		return uop{kind: uInc, d: uint8(gprDst(in.A)), pc: pc}, true
	case isa.DEC:
		return uop{kind: uDec, d: uint8(gprDst(in.A)), pc: pc}, true

	case isa.SHL, isa.SHR, isa.SAR:
		cnt := uint32(in.B.Imm) & 31
		if cnt == 0 {
			// The specialized closure is a no-op: flags untouched, no write.
			return uop{}, false
		}
		var k uint8
		switch in.Op {
		case isa.SHL:
			k = uShlI
		case isa.SHR:
			k = uShrI
		default:
			k = uSarI
		}
		return uop{kind: k, d: uint8(gprDst(in.A)), imm: cnt, pc: pc}, true

	case isa.CDQ:
		return uop{kind: uCdq, pc: pc}, true

	case isa.EMMS:
		return uop{kind: uEmms, pc: pc}, true

	case isa.MOVD:
		if in.A.IsReg() && in.A.Reg.IsMMX() {
			md := uint8(in.A.Reg.MMXIndex())
			if sr := gprDst(in.B); sr >= 0 {
				return uop{kind: uMovdGM, d: md, s: uint8(sr), pc: pc}, true
			}
			if in.B.IsMem() && (in.B.Size == isa.SizeD || in.B.Size == isa.SizeNone) {
				if u, ok := memRef(in.B, pc); ok {
					u.kind = uMovdLM
					u.d = md
					return u, true
				}
			}
			return uCallOp(d, pc), true
		}
		if in.B.IsReg() && in.B.Reg.IsMMX() {
			ms := uint8(in.B.Reg.MMXIndex())
			if dr := gprDst(in.A); dr >= 0 {
				return uop{kind: uMovdMG, d: uint8(dr), s: ms, pc: pc}, true
			}
			if in.A.IsMem() && (in.A.Size == isa.SizeD || in.A.Size == isa.SizeNone) {
				if u, ok := memRef(in.A, pc); ok {
					u.kind = uMovdSM
					u.s = ms
					return u, true
				}
			}
		}
		return uCallOp(d, pc), true

	case isa.MOVQ:
		if in.A.IsReg() && in.A.Reg.IsMMX() {
			md := uint8(in.A.Reg.MMXIndex())
			if in.B.IsReg() && in.B.Reg.IsMMX() {
				return uop{kind: uMovqRR, d: md, s: uint8(in.B.Reg.MMXIndex()), pc: pc}, true
			}
			if in.B.IsMem() {
				if u, ok := memRef(in.B, pc); ok {
					// compileReadMM: a dword operand narrows the load, any
					// other size is the full qword.
					if in.B.Size == isa.SizeD {
						u.kind = uMovqLM32
					} else {
						u.kind = uMovqLM64
					}
					u.d = md
					return u, true
				}
			}
			return uCallOp(d, pc), true
		}
		if in.A.IsMem() && in.B.IsReg() && in.B.Reg.IsMMX() {
			if u, ok := memRef(in.A, pc); ok {
				u.kind = uMovqSM
				u.s = uint8(in.B.Reg.MMXIndex())
				return u, true
			}
		}
		return uCallOp(d, pc), true

	case isa.PSLLW, isa.PSLLD, isa.PSLLQ, isa.PSRLW, isa.PSRLD, isa.PSRLQ,
		isa.PSRAW, isa.PSRAD:
		if !in.A.IsReg() || !in.A.Reg.IsMMX() {
			return uCallOp(d, pc), true
		}
		var shift func(mmx.Reg, uint) mmx.Reg
		switch in.Op {
		case isa.PSLLW:
			shift = mmx.PSllW
		case isa.PSLLD:
			shift = mmx.PSllD
		case isa.PSLLQ:
			shift = mmx.PSllQ
		case isa.PSRLW:
			shift = mmx.PSrlW
		case isa.PSRLD:
			shift = mmx.PSrlD
		case isa.PSRLQ:
			shift = mmx.PSrlQ
		case isa.PSRAW:
			shift = mmx.PSraW
		default:
			shift = mmx.PSraD
		}
		md := uint8(in.A.Reg.MMXIndex())
		if in.B.IsImm() {
			n := uint64(in.B.Imm)
			if n > 64 {
				n = 64
			}
			return uop{kind: uMMXShiftI, d: md, imm: uint32(n), sfn: shift, pc: pc}, true
		}
		if in.B.IsReg() && in.B.Reg.IsMMX() {
			return uop{kind: uMMXShiftRR, d: md, s: uint8(in.B.Reg.MMXIndex()), sfn: shift, pc: pc}, true
		}
		return uCallOp(d, pc), true
	}

	if in.Op.IsMMX() {
		if f, ok := mmxBinary[in.Op]; ok && in.A.IsReg() && in.A.Reg.IsMMX() {
			md := uint8(in.A.Reg.MMXIndex())
			if in.B.IsReg() && in.B.Reg.IsMMX() {
				return uop{kind: uMMXBinRR, d: md, s: uint8(in.B.Reg.MMXIndex()), mfn: f, pc: pc}, true
			}
			if in.B.IsMem() {
				if u, ok := memRef(in.B, pc); ok {
					if in.B.Size == isa.SizeD {
						u.kind = uMMXBinRM32
					} else {
						u.kind = uMMXBinRM64
					}
					u.d = md
					u.mfn = f
					return u, true
				}
			}
		}
		return uCallOp(d, pc), true
	}

	if in.Op.IsFP() {
		return lowerFP(d, pc)
	}

	return uCallOp(d, pc), true
}

// lowerFP lowers the specialized floating-point shapes (compileFP
// succeeded, so the shapes below are the only possibilities).
func lowerFP(d *decoded, pc int32) (uop, bool) {
	in := d.inst
	fpMemKind := func(base32, base64 uint8) (uint8, bool) {
		switch in.B.Size {
		case isa.SizeD:
			return base32, true
		case isa.SizeQ:
			return base64, true
		}
		return 0, false
	}
	switch in.Op {
	case isa.FLD:
		fd := uint8(fpDst(in.A))
		if in.B.IsReg() && in.B.Reg.IsFP() {
			return uop{kind: uFMovRR, d: fd, s: uint8(in.B.Reg.FPIndex()), pc: pc}, true
		}
		if in.B.IsMem() {
			if u, ok := memRef(in.B, pc); ok {
				if k, ok := fpMemKind(uFLoad32, uFLoad64); ok {
					u.kind = k
					u.d = fd
					return u, true
				}
			}
		}
		return uCallOp(d, pc), true

	case isa.FLDC:
		return uop{
			kind: uFConst,
			d:    uint8(fpDst(in.A)),
			fv:   math.Float64frombits(uint64(in.B.Imm)),
			pc:   pc,
		}, true

	case isa.FADD, isa.FSUB, isa.FSUBR, isa.FMUL, isa.FDIV:
		var sub uint8
		switch in.Op {
		case isa.FADD:
			sub = fpAdd
		case isa.FSUB:
			sub = fpSub
		case isa.FSUBR:
			sub = fpSubR
		case isa.FMUL:
			sub = fpMul
		default:
			sub = fpDiv
		}
		fd := uint8(fpDst(in.A))
		if in.B.IsReg() && in.B.Reg.IsFP() {
			return uop{kind: uFArithRR, d: fd, s: uint8(in.B.Reg.FPIndex()), alu: sub, pc: pc}, true
		}
		if in.B.IsMem() {
			if u, ok := memRef(in.B, pc); ok {
				if k, ok := fpMemKind(uFArithM32, uFArithM64); ok {
					u.kind = k
					u.d = fd
					u.alu = sub
					return u, true
				}
			}
		}
		return uCallOp(d, pc), true

	case isa.FCOM:
		fd := uint8(fpDst(in.A))
		if in.B.IsReg() && in.B.Reg.IsFP() {
			return uop{kind: uFComRR, d: fd, s: uint8(in.B.Reg.FPIndex()), pc: pc}, true
		}
		if in.B.IsMem() {
			if u, ok := memRef(in.B, pc); ok {
				if k, ok := fpMemKind(uFComM32, uFComM64); ok {
					u.kind = k
					u.d = fd
					return u, true
				}
			}
		}
		return uCallOp(d, pc), true
	}
	return uCallOp(d, pc), true
}

// lowerALUMem lowers a memory-destination two-operand ALU instruction
// (op [mem], reg/imm) into a single RMW micro-op. The closure it mirrors
// loads the sized operand, computes flags on the widened values, then —
// for the writing ops — stores back with a second access charge; cmp and
// test stop after the flags. u.alu selects the operation, u.d the operand
// size (0/1/2 = byte/word/dword), and the B value rides in s (uAluMR) or
// imm2 (uAluMI) because imm is the address displacement.
func lowerALUMem(in *isa.Inst, pc int32) (uop, bool) {
	if !in.A.IsMem() {
		return uop{}, false
	}
	var sel uint8
	switch in.Op {
	case isa.ADD:
		sel = aluAdd
	case isa.SUB:
		sel = aluSub
	case isa.CMP:
		sel = aluCmp
	case isa.AND:
		sel = aluAnd
	case isa.TEST:
		sel = aluTest
	case isa.OR:
		sel = aluOr
	case isa.XOR:
		sel = aluXor
	case isa.IMUL:
		sel = aluImul
	default:
		return uop{}, false
	}
	var size uint8
	switch in.A.Size {
	case isa.SizeB:
		size = 0
	case isa.SizeW:
		size = 1
	case isa.SizeD, isa.SizeNone:
		size = 2
	default:
		return uop{}, false
	}
	u, ok := memRef(in.A, pc)
	if !ok {
		return uop{}, false
	}
	u.alu = sel
	u.d = size
	if in.B.Kind == isa.KindImm {
		u.kind = uAluMI
		u.imm2 = uint32(in.B.Imm)
		return u, true
	}
	if sr := gprDst(in.B); sr >= 0 {
		u.kind = uAluMR
		u.s = uint8(sr)
		return u, true
	}
	return uop{}, false
}

// Cached register indices for the μops with implicit operands.
var (
	traceEAX = uint8(isa.EAX.GPRIndex())
	traceEDX = uint8(isa.EDX.GPRIndex())
	traceESP = uint8(isa.ESP.GPRIndex())
)

// memAddr computes a flattened memory operand's effective address from the
// cached register file (uint32 wraparound, as compileAddr).
func memAddr(u *uop, gpr *[8]uint32) uint32 {
	a := u.imm
	if u.b != noIdx {
		a += gpr[u.b&7]
	}
	if u.x != noIdx {
		a += gpr[u.x&7] * u.scale
	}
	return a
}

// addFlags/subFlags/logicFlags compute the flag quartet the setAdd/setSub/
// setLogic CPU methods would, but into locals.
func addFlags(a, b, r uint32) (zf, sf, cf, of bool) {
	return r == 0, int32(r) < 0, r < a, (a^r)&(b^r)&0x80000000 != 0
}

func subFlags(a, b, r uint32) (zf, sf, cf, of bool) {
	return r == 0, int32(r) < 0, a < b, (a^b)&(a^r)&0x80000000 != 0
}

func logicFlags(r uint32) (zf, sf, cf, of bool) {
	return r == 0, int32(r) < 0, false, false
}

// execTrace runs the superblock from its head until a side exit, the loop's
// own recorded exit, the instruction budget, or a fault. The GPR/MM register
// files and the flags live in locals for the whole stay; CPU state is
// spilled only around uCall handlers, at poll points, and on leaving, which
// is what buys the trace tier its throughput. Architectural equivalence
// contract: at every return, c.gpr/c.mm/flags/c.pc/c.executed are exactly
// what block dispatch would have produced at the same point, and every full
// iteration (ObserveTrace) / partial exit (ObserveTraceExit) hands the
// observer one cache penalty per memory-referencing instruction in
// retirement order. tobs may be nil.
func (c *CPU) execTrace(tr *vmTrace, ts *traceState, maxInstrs int64, tobs TraceObserver, pollAt *int64) error {
	gpr := c.gpr
	mm := c.mm
	zf, sf, cf, of := c.zf, c.sf, c.cf, c.of
	measured := c.measuring
	entry := c.executed
	iterBase := entry
	hier := c.Hier
	memu := c.Mem
	uops := tr.ops
	pen := ts.penbuf[:0]
	var final int64
	var retErr error
	exitK := int32(-1)
	exitOp := int32(-1)
	var exitPath uint16
	exited := false
	i := 0
	for {
		u := &uops[i]
		switch u.kind {
		case uCall:
			c.gpr = gpr
			c.zf, c.sf, c.cf, c.of = zf, sf, cf, of
			if u.mmx {
				c.mm = mm
			}
			c.pc = int(u.pc)
			ts.ev.MemPenalty = 0
			if err := u.exec(c, &ts.ev); err != nil {
				// The handler may have committed partial state before
				// faulting (a decremented ESP, say): keep everything it
				// wrote, spill only what it never saw.
				if !u.mmx {
					c.mm = mm
				}
				c.executed = iterBase
				ts.penbuf = pen[:0]
				return err
			}
			gpr = c.gpr
			zf, sf, cf, of = c.zf, c.sf, c.cf, c.of
			if u.mmx {
				mm = c.mm
			}
			if u.refsMem {
				pen = append(pen, int32(ts.ev.MemPenalty))
			}

		case uMovRR:
			gpr[u.d&7] = gpr[u.s&7]
		case uMovRI:
			gpr[u.d&7] = u.imm

		case uLoad8:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			v, ok := memu.LoadU8(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("load byte out of range at %#x", a)
				goto out
			}
			gpr[u.d&7] = uint32(v)
		case uLoad16:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			v, ok := memu.LoadU16(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("load word out of range at %#x", a)
				goto out
			}
			gpr[u.d&7] = uint32(v)
		case uLoad32:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			v, ok := memu.LoadU32(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("load dword out of range at %#x", a)
				goto out
			}
			gpr[u.d&7] = v
		case uLoadSx8:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			v, ok := memu.LoadU8(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("load byte out of range at %#x", a)
				goto out
			}
			gpr[u.d&7] = uint32(int32(int8(v)))
		case uLoadSx16:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			v, ok := memu.LoadU16(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("load word out of range at %#x", a)
				goto out
			}
			gpr[u.d&7] = uint32(int32(int16(v)))

		case uStore8:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			if !memu.StoreU8(a, uint8(gpr[u.s&7])) {
				c.pc = int(u.pc)
				retErr = c.fault("store out of range at %#x", a)
				goto out
			}
		case uStore16:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			if !memu.StoreU16(a, uint16(gpr[u.s&7])) {
				c.pc = int(u.pc)
				retErr = c.fault("store out of range at %#x", a)
				goto out
			}
		case uStore32:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			if !memu.StoreU32(a, gpr[u.s&7]) {
				c.pc = int(u.pc)
				retErr = c.fault("store out of range at %#x", a)
				goto out
			}
		case uStore8I:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			if !memu.StoreU8(a, uint8(u.imm2)) {
				c.pc = int(u.pc)
				retErr = c.fault("store out of range at %#x", a)
				goto out
			}
		case uStore16I:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			if !memu.StoreU16(a, uint16(u.imm2)) {
				c.pc = int(u.pc)
				retErr = c.fault("store out of range at %#x", a)
				goto out
			}
		case uStore32I:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			if !memu.StoreU32(a, u.imm2) {
				c.pc = int(u.pc)
				retErr = c.fault("store out of range at %#x", a)
				goto out
			}

		case uLea:
			gpr[u.d&7] = memAddr(u, &gpr)
		case uZx8:
			gpr[u.d&7] = gpr[u.s&7] & 0xFF
		case uZx16:
			gpr[u.d&7] = gpr[u.s&7] & 0xFFFF
		case uSx8:
			gpr[u.d&7] = uint32(int32(int8(gpr[u.s&7])))
		case uSx16:
			gpr[u.d&7] = uint32(int32(int16(gpr[u.s&7])))
		case uXchg:
			gpr[u.d&7], gpr[u.s&7] = gpr[u.s&7], gpr[u.d&7]

		case uPushR, uPushI:
			sp := gpr[traceESP] - 4
			gpr[traceESP] = sp
			pen = append(pen, int32(hier.Access(sp)))
			v := u.imm
			if u.kind == uPushR {
				v = gpr[u.s&7]
			}
			if !memu.StoreU32(sp, v) {
				c.pc = int(u.pc)
				retErr = c.fault("stack overflow at %#x", sp)
				goto out
			}
		case uPopR:
			sp := gpr[traceESP]
			pen = append(pen, int32(hier.Access(sp)))
			v, ok := memu.LoadU32(sp)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("stack underflow at %#x", sp)
				goto out
			}
			gpr[traceESP] = sp + 4
			gpr[u.d&7] = v

		case uAddRR, uAddRI:
			a := gpr[u.d&7]
			b := u.imm
			if u.kind == uAddRR {
				b = gpr[u.s&7]
			}
			r := a + b
			zf, sf, cf, of = addFlags(a, b, r)
			gpr[u.d&7] = r
		case uSubRR, uSubRI:
			a := gpr[u.d&7]
			b := u.imm
			if u.kind == uSubRR {
				b = gpr[u.s&7]
			}
			r := a - b
			zf, sf, cf, of = subFlags(a, b, r)
			gpr[u.d&7] = r
		case uCmpRR, uCmpRI:
			a := gpr[u.d&7]
			b := u.imm
			if u.kind == uCmpRR {
				b = gpr[u.s&7]
			}
			zf, sf, cf, of = subFlags(a, b, a-b)
		case uAndRR, uAndRI:
			a := gpr[u.d&7]
			b := u.imm
			if u.kind == uAndRR {
				b = gpr[u.s&7]
			}
			r := a & b
			zf, sf, cf, of = logicFlags(r)
			gpr[u.d&7] = r
		case uOrRR, uOrRI:
			a := gpr[u.d&7]
			b := u.imm
			if u.kind == uOrRR {
				b = gpr[u.s&7]
			}
			r := a | b
			zf, sf, cf, of = logicFlags(r)
			gpr[u.d&7] = r
		case uXorRR, uXorRI:
			a := gpr[u.d&7]
			b := u.imm
			if u.kind == uXorRR {
				b = gpr[u.s&7]
			}
			r := a ^ b
			zf, sf, cf, of = logicFlags(r)
			gpr[u.d&7] = r
		case uTestRR, uTestRI:
			a := gpr[u.d&7]
			b := u.imm
			if u.kind == uTestRR {
				b = gpr[u.s&7]
			}
			zf, sf, cf, of = logicFlags(a & b)
		case uImulRR, uImulRI:
			a := gpr[u.d&7]
			b := u.imm
			if u.kind == uImulRR {
				b = gpr[u.s&7]
			}
			full := int64(int32(a)) * int64(int32(b))
			r := uint32(full)
			cf = full != int64(int32(r))
			of = cf
			gpr[u.d&7] = r

		case uAddRM, uSubRM, uCmpRM, uAndRM, uOrRM, uXorRM, uTestRM, uImulRM:
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			b, ok := memu.LoadU32(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("load dword out of range at %#x", a)
				goto out
			}
			d := gpr[u.d&7]
			switch u.kind {
			case uAddRM:
				r := d + b
				zf, sf, cf, of = addFlags(d, b, r)
				gpr[u.d&7] = r
			case uSubRM:
				r := d - b
				zf, sf, cf, of = subFlags(d, b, r)
				gpr[u.d&7] = r
			case uCmpRM:
				zf, sf, cf, of = subFlags(d, b, d-b)
			case uAndRM:
				r := d & b
				zf, sf, cf, of = logicFlags(r)
				gpr[u.d&7] = r
			case uOrRM:
				r := d | b
				zf, sf, cf, of = logicFlags(r)
				gpr[u.d&7] = r
			case uXorRM:
				r := d ^ b
				zf, sf, cf, of = logicFlags(r)
				gpr[u.d&7] = r
			case uTestRM:
				zf, sf, cf, of = logicFlags(d & b)
			default: // uImulRM
				full := int64(int32(d)) * int64(int32(b))
				r := uint32(full)
				cf = full != int64(int32(r))
				of = cf
				gpr[u.d&7] = r
			}

		case uAluMR, uAluMI:
			a := memAddr(u, &gpr)
			p := int32(hier.Access(a))
			var av uint32
			switch u.d {
			case 0:
				v, ok := memu.LoadU8(a)
				if !ok {
					c.pc = int(u.pc)
					retErr = c.fault("load byte out of range at %#x", a)
					goto out
				}
				av = uint32(v)
			case 1:
				v, ok := memu.LoadU16(a)
				if !ok {
					c.pc = int(u.pc)
					retErr = c.fault("load word out of range at %#x", a)
					goto out
				}
				av = uint32(v)
			default:
				v, ok := memu.LoadU32(a)
				if !ok {
					c.pc = int(u.pc)
					retErr = c.fault("load dword out of range at %#x", a)
					goto out
				}
				av = v
			}
			bv := u.imm2
			if u.kind == uAluMR {
				bv = gpr[u.s&7]
			}
			var r uint32
			write := true
			switch u.alu {
			case aluAdd:
				r = av + bv
				zf, sf, cf, of = addFlags(av, bv, r)
			case aluSub:
				r = av - bv
				zf, sf, cf, of = subFlags(av, bv, r)
			case aluCmp:
				zf, sf, cf, of = subFlags(av, bv, av-bv)
				write = false
			case aluAnd:
				r = av & bv
				zf, sf, cf, of = logicFlags(r)
			case aluTest:
				zf, sf, cf, of = logicFlags(av & bv)
				write = false
			case aluOr:
				r = av | bv
				zf, sf, cf, of = logicFlags(r)
			case aluXor:
				r = av ^ bv
				zf, sf, cf, of = logicFlags(r)
			default: // aluImul
				full := int64(int32(av)) * int64(int32(bv))
				r = uint32(full)
				cf = full != int64(int32(r))
				of = cf
			}
			if write {
				// Read-modify-write charges the hierarchy twice, exactly
				// like the closure's separate load and store halves.
				p += int32(hier.Access(a))
				var ok bool
				switch u.d {
				case 0:
					ok = memu.StoreU8(a, uint8(r))
				case 1:
					ok = memu.StoreU16(a, uint16(r))
				default:
					ok = memu.StoreU32(a, r)
				}
				if !ok {
					c.pc = int(u.pc)
					retErr = c.fault("store out of range at %#x", a)
					goto out
				}
			}
			pen = append(pen, p)

		case uNot:
			gpr[u.d&7] = ^gpr[u.d&7]
		case uNeg:
			a := gpr[u.d&7]
			r := -a
			zf, sf, cf, of = subFlags(0, a, r)
			gpr[u.d&7] = r
		case uInc:
			r := gpr[u.d&7] + 1
			of = r == 0x80000000
			zf, sf = r == 0, int32(r) < 0
			gpr[u.d&7] = r
		case uDec:
			a := gpr[u.d&7]
			r := a - 1
			of = a == 0x80000000
			zf, sf = r == 0, int32(r) < 0
			gpr[u.d&7] = r
		case uShlI:
			a := gpr[u.d&7]
			r := a << u.imm
			cf = a&(1<<(32-u.imm)) != 0
			zf, sf = r == 0, int32(r) < 0
			of = false
			gpr[u.d&7] = r
		case uShrI:
			a := gpr[u.d&7]
			r := a >> u.imm
			cf = a&(1<<(u.imm-1)) != 0
			zf, sf = r == 0, int32(r) < 0
			of = false
			gpr[u.d&7] = r
		case uSarI:
			a := gpr[u.d&7]
			r := uint32(int32(a) >> u.imm)
			cf = a&(1<<(u.imm-1)) != 0
			zf, sf = r == 0, int32(r) < 0
			of = false
			gpr[u.d&7] = r
		case uCdq:
			if int32(gpr[traceEAX]) < 0 {
				gpr[traceEDX] = 0xFFFFFFFF
			} else {
				gpr[traceEDX] = 0
			}

		case uMovdGM:
			c.mmxActive = true
			mm[u.d&7] = mmx.Reg(uint64(gpr[u.s&7]))
		case uMovdMG:
			c.mmxActive = true
			gpr[u.d&7] = uint32(mm[u.s&7])
		case uMovdLM:
			c.mmxActive = true
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			v, ok := memu.LoadU32(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("load dword out of range at %#x", a)
				goto out
			}
			mm[u.d&7] = mmx.Reg(uint64(v))
		case uMovdSM:
			c.mmxActive = true
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			if !memu.StoreU32(a, uint32(mm[u.s&7])) {
				c.pc = int(u.pc)
				retErr = c.fault("store out of range at %#x", a)
				goto out
			}
		case uMovqRR:
			c.mmxActive = true
			mm[u.d&7] = mm[u.s&7]
		case uMovqLM64:
			c.mmxActive = true
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			v, ok := memu.LoadU64(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("mmx qword load out of range at %#x", a)
				goto out
			}
			mm[u.d&7] = mmx.Reg(v)
		case uMovqLM32:
			c.mmxActive = true
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			v, ok := memu.LoadU32(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("mmx dword load out of range at %#x", a)
				goto out
			}
			mm[u.d&7] = mmx.Reg(uint64(v))
		case uMovqSM:
			c.mmxActive = true
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			if !memu.StoreU64(a, uint64(mm[u.s&7])) {
				c.pc = int(u.pc)
				retErr = c.fault("movq store out of range at %#x", a)
				goto out
			}
		case uMMXBinRR:
			c.mmxActive = true
			mm[u.d&7] = u.mfn(mm[u.d&7], mm[u.s&7])
		case uMMXBinRM64:
			c.mmxActive = true
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			v, ok := memu.LoadU64(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("mmx qword load out of range at %#x", a)
				goto out
			}
			mm[u.d&7] = u.mfn(mm[u.d&7], mmx.Reg(v))
		case uMMXBinRM32:
			c.mmxActive = true
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			v, ok := memu.LoadU32(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("mmx dword load out of range at %#x", a)
				goto out
			}
			mm[u.d&7] = u.mfn(mm[u.d&7], mmx.Reg(uint64(v)))
		case uMMXShiftI:
			c.mmxActive = true
			mm[u.d&7] = u.sfn(mm[u.d&7], uint(u.imm))
		case uMMXShiftRR:
			c.mmxActive = true
			n := uint64(mm[u.s&7])
			if n > 64 {
				n = 64
			}
			mm[u.d&7] = u.sfn(mm[u.d&7], uint(n))
		case uEmms:
			c.mmxActive = false

		case uFMovRR, uFConst, uFArithRR, uFComRR:
			if c.mmxActive {
				c.pc = int(u.pc)
				retErr = c.fault(fpWhileMMX)
				goto out
			}
			switch u.kind {
			case uFMovRR:
				c.fp[u.d&7] = c.fp[u.s&7]
			case uFConst:
				c.fp[u.d&7] = u.fv
			case uFArithRR:
				c.fp[u.d&7] = fpApply(u.alu, c.fp[u.d&7], c.fp[u.s&7])
			default: // uFComRR
				a, b := c.fp[u.d&7], c.fp[u.s&7]
				zf, cf = a == b, a < b
				sf, of = false, false
			}
		case uFLoad32, uFArithM32, uFComM32:
			if c.mmxActive {
				c.pc = int(u.pc)
				retErr = c.fault(fpWhileMMX)
				goto out
			}
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			raw, ok := memu.LoadU32(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("float load out of range at %#x", a)
				goto out
			}
			v := float64(math.Float32frombits(raw))
			switch u.kind {
			case uFLoad32:
				c.fp[u.d&7] = v
			case uFArithM32:
				c.fp[u.d&7] = fpApply(u.alu, c.fp[u.d&7], v)
			default: // uFComM32
				fa := c.fp[u.d&7]
				zf, cf = fa == v, fa < v
				sf, of = false, false
			}
		case uFLoad64, uFArithM64, uFComM64:
			if c.mmxActive {
				c.pc = int(u.pc)
				retErr = c.fault(fpWhileMMX)
				goto out
			}
			a := memAddr(u, &gpr)
			pen = append(pen, int32(hier.Access(a)))
			raw, ok := memu.LoadU64(a)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("double load out of range at %#x", a)
				goto out
			}
			v := math.Float64frombits(raw)
			switch u.kind {
			case uFLoad64:
				c.fp[u.d&7] = v
			case uFArithM64:
				c.fp[u.d&7] = fpApply(u.alu, c.fp[u.d&7], v)
			default: // uFComM64
				fa := c.fp[u.d&7]
				zf, cf = fa == v, fa < v
				sf, of = false, false
			}

		case uCallT:
			sp := gpr[traceESP&7] - 4
			gpr[traceESP&7] = sp
			pen = append(pen, int32(hier.Access(sp)))
			if !memu.StoreU32(sp, u.imm2) {
				c.pc = int(u.pc)
				retErr = c.fault("stack overflow at %#x", sp)
				goto out
			}

		case uRet:
			sp := gpr[traceESP&7]
			pen = append(pen, int32(hier.Access(sp)))
			v, ok := memu.LoadU32(sp)
			if !ok {
				c.pc = int(u.pc)
				retErr = c.fault("stack underflow at %#x", sp)
				goto out
			}
			gpr[traceESP&7] = sp + 4
			if u.expect {
				// Tail return: the chain ends here; the popped address is
				// the iteration's computed exit, not a guard failure.
				c.pc = int(v)
				tr.iters++
				ts.iters++
				if u.pathIdx != 0 {
					ts.treeIters++
					ts.treeInstrs += uint64(u.cum)
				}
				if tobs != nil {
					tobs.ObserveTrace(tr.pathID(u.pathIdx), measured, pen)
				}
				pen = pen[:0]
				final = iterBase + u.cum
				goto out
			}
			if v != u.imm {
				// The return went somewhere other than the recorded
				// continuation: side exit. The ret itself retired (its
				// penalty is already in pen, and cum counts it).
				c.pc = int(v)
				final = iterBase + u.cum
				exitK = u.blockK
				exitPath = u.pathIdx
				exited = true
				goto out
			}

		case uJcc:
			var t bool
			switch u.alu {
			case ccE:
				t = zf
			case ccNE:
				t = !zf
			case ccL:
				t = sf != of
			case ccLE:
				t = zf || sf != of
			case ccG:
				t = !zf && sf == of
			case ccGE:
				t = sf == of
			case ccB:
				t = cf
			case ccBE:
				t = cf || zf
			case ccA:
				t = !cf && !zf
			case ccAE:
				t = !cf
			case ccS:
				t = sf
			default: // ccNS
				t = !sf
			}
			if t != u.expect {
				if u.child != 0 && iterBase+tr.paths[u.childPath].nInstrs <= maxInstrs {
					// Fork into the attached alternate path: registers stay
					// in the locals and the child segment carries the
					// iteration back to the head. When the child path does
					// not fit the remaining budget, fall through to a plain
					// side exit — block dispatch single-steps to the edge.
					i = int(u.child) - 1
					break
				}
				// Side exit: the guard went the un-recorded way. The blocks
				// up to and including this one completed architecturally.
				if t {
					c.pc = int(u.tgt)
				} else {
					c.pc = int(u.pc) + 1
				}
				final = iterBase + u.cum
				exitK = u.blockK
				exitOp = int32(i)
				exitPath = u.pathIdx
				exited = true
				goto out
			}

		case uEnd:
			iterDone := iterBase + u.cum
			tr.iters++
			ts.iters++
			if u.pathIdx != 0 {
				ts.treeIters++
				ts.treeInstrs += uint64(u.cum)
			}
			if tobs != nil {
				tobs.ObserveTrace(tr.pathID(u.pathIdx), measured, pen)
			}
			pen = pen[:0]
			iterBase = iterDone
			if !u.expect {
				// Straight-line trace: one pass, exit to the recorded
				// successor.
				final = iterDone
				c.pc = int(u.tgt)
				goto out
			}
			if iterDone >= *pollAt {
				c.gpr = gpr
				c.mm = mm
				c.zf, c.sf, c.cf, c.of = zf, sf, cf, of
				c.executed = iterDone
				c.pc = int(tr.head)
				if err := c.Poll(); err != nil {
					ts.penbuf = pen[:0]
					return c.abort(err)
				}
				*pollAt = iterDone + c.pollInterval()
				gpr = c.gpr
				mm = c.mm
				zf, sf, cf, of = c.zf, c.sf, c.cf, c.of
			}
			if iterDone+tr.nInstrs > maxInstrs {
				// Not enough budget for another full iteration: hand back
				// to block dispatch, which single-steps to the exact edge.
				final = iterDone
				c.pc = int(tr.head)
				goto out
			}
			i = -1
		}
		i++
	}

out:
	c.gpr = gpr
	c.mm = mm
	c.zf, c.sf, c.cf, c.of = zf, sf, cf, of
	if retErr != nil {
		c.executed = iterBase
		ts.penbuf = pen[:0]
		return retErr
	}
	c.executed = final
	ts.instrs += uint64(final - entry)
	if exited {
		tr.exits++
		ts.exits++
		if tobs != nil {
			tobs.ObserveTraceExit(tr.pathID(exitPath), int(exitK), measured, pen)
		}
		ts.maybeDeopt(tr)
		if exitOp >= 0 && !ts.rec.active &&
			ts.byBlock[tr.headBlock] == tr.slot {
			// A guard exit from a still-live trace: count it toward
			// growing the alternate path as a child.
			c.growChild(ts, tobs, tr, exitOp)
		}
	}
	ts.penbuf = pen[:0]
	return nil
}

// fpApply dispatches a uFArith sub-op.
func fpApply(sub uint8, a, b float64) float64 {
	switch sub {
	case fpAdd:
		return a + b
	case fpSub:
		return a - b
	case fpSubR:
		return b - a
	case fpMul:
		return a * b
	default: // fpDiv
		return a / b
	}
}
