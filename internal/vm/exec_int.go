package vm

import "mmxdsp/internal/isa"

// execInt executes integer ALU, data-movement and control instructions.
func (c *CPU) execInt(in *isa.Inst, ev *Event) error {
	switch in.Op {
	case isa.MOV:
		// Distinguish store-from-register width from full register moves.
		v, err := c.readInt(in.B, ev)
		if err != nil {
			return err
		}
		return c.writeInt(in.A, v, ev)

	case isa.MOVZXB:
		v, err := c.loadSizedAs(in.B, isa.SizeB, ev)
		if err != nil {
			return err
		}
		return c.writeInt(in.A, v&0xFF, ev)
	case isa.MOVZXW:
		v, err := c.loadSizedAs(in.B, isa.SizeW, ev)
		if err != nil {
			return err
		}
		return c.writeInt(in.A, v&0xFFFF, ev)
	case isa.MOVSXB:
		v, err := c.loadSizedAs(in.B, isa.SizeB, ev)
		if err != nil {
			return err
		}
		return c.writeInt(in.A, uint32(int32(int8(v))), ev)
	case isa.MOVSXW:
		v, err := c.loadSizedAs(in.B, isa.SizeW, ev)
		if err != nil {
			return err
		}
		return c.writeInt(in.A, uint32(int32(int16(v))), ev)

	case isa.LEA:
		if !in.B.IsMem() {
			return c.fault("lea needs a memory operand")
		}
		return c.writeInt(in.A, c.effAddr(in.B), ev)

	case isa.XCHG:
		if !in.A.IsReg() || !in.B.IsReg() {
			return c.fault("xchg supports register operands only")
		}
		i, j := in.A.Reg.GPRIndex(), in.B.Reg.GPRIndex()
		c.gpr[i], c.gpr[j] = c.gpr[j], c.gpr[i]
		return nil

	case isa.PUSH:
		v, err := c.readInt(in.A, ev)
		if err != nil {
			return err
		}
		return c.push32(v, ev)
	case isa.POP:
		v, err := c.pop32(ev)
		if err != nil {
			return err
		}
		return c.writeInt(in.A, v, ev)

	case isa.ADD, isa.ADC:
		a, err := c.readInt(in.A, ev)
		if err != nil {
			return err
		}
		b, err := c.readInt(in.B, ev)
		if err != nil {
			return err
		}
		if in.Op == isa.ADC && c.cf {
			b++
		}
		r := a + b
		c.setAdd(a, b, r)
		return c.writeInt(in.A, r, ev)

	case isa.SUB, isa.SBB:
		a, err := c.readInt(in.A, ev)
		if err != nil {
			return err
		}
		b, err := c.readInt(in.B, ev)
		if err != nil {
			return err
		}
		if in.Op == isa.SBB && c.cf {
			b++
		}
		r := a - b
		c.setSub(a, b, r)
		return c.writeInt(in.A, r, ev)

	case isa.CMP:
		a, err := c.readInt(in.A, ev)
		if err != nil {
			return err
		}
		b, err := c.readInt(in.B, ev)
		if err != nil {
			return err
		}
		c.setSub(a, b, a-b)
		return nil

	case isa.AND, isa.OR, isa.XOR, isa.TEST:
		a, err := c.readInt(in.A, ev)
		if err != nil {
			return err
		}
		b, err := c.readInt(in.B, ev)
		if err != nil {
			return err
		}
		var r uint32
		switch in.Op {
		case isa.AND, isa.TEST:
			r = a & b
		case isa.OR:
			r = a | b
		case isa.XOR:
			r = a ^ b
		}
		c.setLogic(r)
		if in.Op == isa.TEST {
			return nil
		}
		return c.writeInt(in.A, r, ev)

	case isa.NOT:
		a, err := c.readInt(in.A, ev)
		if err != nil {
			return err
		}
		return c.writeInt(in.A, ^a, ev)

	case isa.NEG:
		a, err := c.readInt(in.A, ev)
		if err != nil {
			return err
		}
		r := -a
		c.setSub(0, a, r)
		return c.writeInt(in.A, r, ev)

	case isa.INC, isa.DEC:
		a, err := c.readInt(in.A, ev)
		if err != nil {
			return err
		}
		var r uint32
		if in.Op == isa.INC {
			r = a + 1
			c.of = r == 0x80000000
		} else {
			r = a - 1
			c.of = a == 0x80000000
		}
		c.setZS(r) // inc/dec preserve CF, as on IA-32
		return c.writeInt(in.A, r, ev)

	case isa.SHL, isa.SHR, isa.SAR:
		a, err := c.readInt(in.A, ev)
		if err != nil {
			return err
		}
		cnt, err := c.readInt(in.B, ev)
		if err != nil {
			return err
		}
		cnt &= 31
		if cnt == 0 {
			return nil // flags unchanged, no write needed
		}
		var r uint32
		switch in.Op {
		case isa.SHL:
			r = a << cnt
			c.cf = a&(1<<(32-cnt)) != 0
		case isa.SHR:
			r = a >> cnt
			c.cf = a&(1<<(cnt-1)) != 0
		case isa.SAR:
			r = uint32(int32(a) >> cnt)
			c.cf = a&(1<<(cnt-1)) != 0
		}
		c.setZS(r)
		c.of = false
		return c.writeInt(in.A, r, ev)

	case isa.IMUL:
		a, err := c.readInt(in.A, ev)
		if err != nil {
			return err
		}
		b, err := c.readInt(in.B, ev)
		if err != nil {
			return err
		}
		full := int64(int32(a)) * int64(int32(b))
		r := uint32(full)
		c.cf = full != int64(int32(r))
		c.of = c.cf
		return c.writeInt(in.A, r, ev)

	case isa.IDIV:
		d, err := c.readInt(in.A, ev)
		if err != nil {
			return err
		}
		if d == 0 {
			return c.fault("integer divide by zero")
		}
		num := int64(c.gpr[isa.EDX.GPRIndex()])<<32 | int64(c.gpr[isa.EAX.GPRIndex()])
		den := int64(int32(d))
		quo := num / den
		rem := num % den
		if quo > 0x7FFFFFFF || quo < -0x80000000 {
			return c.fault("idiv overflow (%d / %d)", num, den)
		}
		c.gpr[isa.EAX.GPRIndex()] = uint32(quo)
		c.gpr[isa.EDX.GPRIndex()] = uint32(rem)
		return nil

	case isa.CDQ:
		if int32(c.gpr[isa.EAX.GPRIndex()]) < 0 {
			c.gpr[isa.EDX.GPRIndex()] = 0xFFFFFFFF
		} else {
			c.gpr[isa.EDX.GPRIndex()] = 0
		}
		return nil

	case isa.JMP:
		c.pc = int(in.Target)
		ev.Taken = true
		return nil

	case isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JBE, isa.JA, isa.JAE, isa.JS, isa.JNS:
		if c.cond(in.Op) {
			c.pc = int(in.Target)
			ev.Taken = true
		}
		return nil

	case isa.CALL:
		if err := c.push32(uint32(c.pc+1), ev); err != nil {
			return err
		}
		c.pc = int(in.Target)
		ev.Taken = true
		return nil

	case isa.RET:
		ra, err := c.pop32(ev)
		if err != nil {
			return err
		}
		c.pc = int(ra)
		ev.Taken = true
		return nil

	case isa.HALT:
		c.halted = true
		ev.Taken = true
		ev.Target = c.pc
		return nil
	}
	return c.fault("unimplemented integer op %s", in.Op)
}

// loadSizedAs reads a value forcing the given width (for movzx/movsx whose
// width is part of the opcode). Register sources use the low bits.
func (c *CPU) loadSizedAs(o isa.Operand, size isa.Size, ev *Event) (uint32, error) {
	if o.Kind == isa.KindReg {
		return c.gpr[o.Reg.GPRIndex()], nil
	}
	o.Size = size
	return c.loadSized(o, ev)
}
