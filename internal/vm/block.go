// Basic-block superhandlers: the predecoded handler array lowered one level
// further. Compile groups instructions into the basic blocks discovered by
// asm.Program.Blocks and the inner loop dispatches a whole block at a time:
// execute the body (as a fused handler chain when every body instruction is
// provably non-faulting), hand the observer one ObserveBlock call instead of
// one Retire per instruction, then retire the terminator through the exact
// per-event path (its timing depends on dynamic state: branch direction,
// BTB, stack memory).
//
// The dispatcher drops to single-instruction stepping whenever exactness
// requires it — entry at a non-leader PC (a ret popped an arbitrary return
// address) or an instruction budget too small to cover a whole block — so
// faults stay byte-identical to the per-event interpreters.
package vm

// BlockObserver is an optional extension of Observer. When a CPU's observer
// implements it, Run retires straight-line block bodies through ObserveBlock
// instead of per-instruction Retire calls; observers that need the full
// event stream (tracers, tees, event hashers) simply don't implement the
// interface and automatically keep the per-event path.
type BlockObserver interface {
	Observer
	// ObserveBlock reports one complete execution of basic block bi (as
	// numbered by asm.Program.Blocks): every event-emitting body
	// instruction retired exactly once, in program order, with no control
	// transfer and with the measured flag constant throughout. penalties
	// holds, in body order, the cache penalty charged to each
	// memory-referencing body instruction; it is empty for memory-free
	// bodies and only valid for the duration of the call. The block's
	// terminator (if any) is delivered separately through Retire.
	ObserveBlock(bi int, measured bool, penalties []int32)
}

// Terminator kinds of a vmBlock.
const (
	termNone uint8 = iota // falls through into the next leader
	termCtl               // control transfer or halt: retire per-event
	termProfOn
	termProfOff
)

// vmBlock is one basic block prepared for dispatch.
type vmBlock struct {
	start    int32
	bodyEnd  int32 // terminator PC, or end for fall-through blocks
	end      int32
	term     int32 // terminator PC, -1 when termKind == termNone
	termKind uint8
	// fused: every body instruction is a NOP or a specialized,
	// memory-free, non-FP handler — shapes whose handlers cannot fault —
	// so the body runs as a straight handler chain with no per-
	// instruction PC stores or event bookkeeping.
	fused bool
	// execs holds the handlers of the event-emitting body instructions of
	// a fused block (NOPs retire silently and are skipped entirely).
	execs []execFn
	// steps is the non-fused equivalent: the event-emitting body
	// instructions with the per-instruction state the slower loop needs
	// (fault PC, penalty collection).
	steps []bodyStep
	// events is the event-emitting body instruction count; nInstrs and
	// nBody count all instructions (including NOPs and the terminator)
	// for the executed-instruction budget.
	events  int32
	nInstrs int64
	nBody   int64
}

// bodyStep is one event-emitting instruction of a non-fused block body.
type bodyStep struct {
	exec    execFn
	pc      int32
	refsMem bool
}

// buildBlocks lowers the predecoded handler array into dispatchable blocks.
func (c *Code) buildBlocks() {
	p := c.prog
	infos := p.Blocks()
	c.blocks = make([]vmBlock, len(infos))
	c.blockOf = make([]int32, len(p.Insts))
	for bi := range infos {
		info := &infos[bi]
		b := &c.blocks[bi]
		start, bodyEnd := info.Body()
		b.start = int32(info.Start)
		b.bodyEnd = int32(bodyEnd)
		b.end = int32(info.End)
		b.term = int32(info.Term)
		b.nInstrs = int64(info.End - info.Start)
		b.nBody = int64(bodyEnd - start)
		b.termKind = termNone
		if info.Term >= 0 {
			switch c.ops[info.Term].kind {
			case dProfOn:
				b.termKind = termProfOn
			case dProfOff:
				b.termKind = termProfOff
			default:
				b.termKind = termCtl
			}
		}
		fused := true
		for pc := info.Start; pc < info.End; pc++ {
			c.blockOf[pc] = int32(bi)
		}
		for pc := start; pc < bodyEnd; pc++ {
			d := &c.ops[pc]
			if d.kind == dNop {
				continue
			}
			b.events++
			// Fused bodies skip the per-instruction PC store that fault
			// messages rely on, so they may only contain handlers that
			// provably never fault: the specialized integer and MMX
			// shapes with no memory operand. FP handlers are excluded
			// (mmx-active fault), as is anything on the generic path.
			if !d.spec || d.refsMem || p.Insts[pc].Op.IsFP() {
				fused = false
			}
		}
		if fused {
			b.fused = true
			for pc := start; pc < bodyEnd; pc++ {
				if c.ops[pc].kind != dNop {
					b.execs = append(b.execs, c.ops[pc].exec)
				}
			}
		} else {
			for pc := start; pc < bodyEnd; pc++ {
				d := &c.ops[pc]
				if d.kind != dNormal {
					continue
				}
				b.steps = append(b.steps, bodyStep{
					exec:    d.exec,
					pc:      int32(pc),
					refsMem: d.refsMem,
				})
			}
		}
	}
}

// runBlocks is the block-dispatch inner loop. bobs is the CPU's observer
// when it implements BlockObserver, or nil when the CPU has no observer at
// all (fused bodies then execute with zero observation cost).
func (c *CPU) runBlocks(maxInstrs int64, bobs BlockObserver) error {
	code := c.code
	ops := code.ops
	var ev Event
	var penbuf []int32
	// Poll once per dispatched block: bodies are bounded by the program's
	// longest straight-line run, so the between-poll gap stays within one
	// block of the configured interval.
	pollAt := c.pollStart()
	for !c.halted {
		if c.executed >= pollAt {
			if err := c.Poll(); err != nil {
				return c.abort(err)
			}
			pollAt = c.executed + c.pollInterval()
		}
		pc := c.pc
		if pc < 0 || pc >= len(ops) {
			return c.fault("control transferred outside program (pc=%d)", pc)
		}
		bi := int(code.blockOf[pc])
		b := &code.blocks[bi]
		if int(b.start) != pc || c.executed+b.nInstrs > maxInstrs {
			// Mid-block entry (a ret popped a non-leader address) or not
			// enough budget for the whole block: single-step so budget
			// faults land on exactly the right instruction.
			if err := c.stepDecoded(maxInstrs, &ev); err != nil {
				return err
			}
			continue
		}
		if b.fused {
			c.executed += b.nBody
			for _, fn := range b.execs {
				if err := fn(c, &ev); err != nil {
					return err
				}
			}
			if bobs != nil && b.events > 0 {
				bobs.ObserveBlock(bi, c.measuring, nil)
			}
		} else {
			c.executed += b.nBody
			pen := penbuf[:0]
			for i := range b.steps {
				s := &b.steps[i]
				// Handlers here can fault; c.pc feeds the fault message.
				c.pc = int(s.pc)
				if s.refsMem {
					// Only memory handlers write MemPenalty, and it is
					// only read back after one, so non-memory steps skip
					// the reset.
					ev.MemPenalty = 0
					if err := s.exec(c, &ev); err != nil {
						return err
					}
					pen = append(pen, int32(ev.MemPenalty))
				} else if err := s.exec(c, &ev); err != nil {
					return err
				}
			}
			penbuf = pen
			if bobs != nil && b.events > 0 {
				bobs.ObserveBlock(bi, c.measuring, pen)
			}
		}
		switch b.termKind {
		case termNone:
			c.pc = int(b.end)
		case termProfOn:
			c.executed++
			c.measuring = true
			c.pc = int(b.end)
		case termProfOff:
			c.executed++
			c.measuring = false
			c.pc = int(b.end)
		default: // termCtl
			tpc := int(b.term)
			c.executed++
			c.pc = tpc
			d := &ops[tpc]
			ev = Event{PC: tpc, Inst: d.inst, Measured: c.measuring}
			if err := d.exec(c, &ev); err != nil {
				return err
			}
			if !ev.Taken {
				c.pc++
			}
			ev.Target = c.pc
			if c.Obs != nil {
				c.Obs.Retire(ev)
			}
		}
	}
	return nil
}

// stepDecoded retires one instruction through the per-event predecoded
// path; semantically one iteration of Run's default loop.
func (c *CPU) stepDecoded(maxInstrs int64, ev *Event) error {
	if c.executed >= maxInstrs {
		return c.budgetFault(maxInstrs)
	}
	pc := c.pc
	ops := c.code.ops
	if pc < 0 || pc >= len(ops) {
		return c.fault("control transferred outside program (pc=%d)", pc)
	}
	d := &ops[pc]
	c.executed++
	if d.kind != dNormal {
		switch d.kind {
		case dProfOn:
			c.measuring = true
		case dProfOff:
			c.measuring = false
		}
		c.pc++
		return nil
	}
	*ev = Event{PC: pc, Inst: d.inst, Measured: c.measuring}
	if err := d.exec(c, ev); err != nil {
		return err
	}
	if !ev.Taken {
		c.pc++
	}
	ev.Target = c.pc
	if c.Obs != nil {
		c.Obs.Retire(*ev)
	}
	return nil
}

// CompiledBlocks returns how many basic blocks the program compiled into
// (0 before the first Run when no Code is attached yet).
func (c *CPU) CompiledBlocks() int {
	if c.code == nil {
		return 0
	}
	return len(c.code.blocks)
}
