package vm

import (
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmx"
)

// execMMX executes MMX instructions. Any MMX instruction (except emms)
// puts the machine in MMX mode; emms returns it to FP mode.
func (c *CPU) execMMX(in *isa.Inst, ev *Event) error {
	if in.Op == isa.EMMS {
		c.mmxActive = false
		return nil
	}
	c.mmxActive = true

	switch in.Op {
	case isa.MOVD:
		// movd mm, r32/m32 zero-extends; movd r32/m32, mm takes the low dword.
		if in.A.IsReg() && in.A.Reg.IsMMX() {
			v, err := c.readInt(in.B, ev)
			if err != nil {
				return err
			}
			c.mm[in.A.Reg.MMXIndex()] = mmx.Reg(uint64(v))
			return nil
		}
		v, err := c.readMMSrc(in.B, ev)
		if err != nil {
			return err
		}
		return c.writeInt(in.A, uint32(v), ev)

	case isa.MOVQ:
		if in.A.IsReg() && in.A.Reg.IsMMX() {
			v, err := c.readMMSrc(in.B, ev)
			if err != nil {
				return err
			}
			c.mm[in.A.Reg.MMXIndex()] = v
			return nil
		}
		if !in.A.IsMem() {
			return c.fault("movq destination must be mm register or memory")
		}
		v, err := c.readMMSrc(in.B, ev)
		if err != nil {
			return err
		}
		addr := c.effAddr(in.A)
		c.chargeAccess(addr, ev)
		if !c.Mem.StoreU64(addr, uint64(v)) {
			return c.fault("movq store out of range at %#x", addr)
		}
		return nil

	case isa.PSLLW, isa.PSLLD, isa.PSLLQ, isa.PSRLW, isa.PSRLD, isa.PSRLQ,
		isa.PSRAW, isa.PSRAD:
		dst, err := c.readMMReg(in.A)
		if err != nil {
			return err
		}
		var n uint64
		if in.B.IsImm() {
			n = uint64(in.B.Imm)
		} else {
			v, err := c.readMMSrc(in.B, ev)
			if err != nil {
				return err
			}
			n = uint64(v)
		}
		// Hardware treats the count as a 64-bit value; anything >= 64
		// behaves like a max-width shift and the lane ops handle it.
		if n > 64 {
			n = 64
		}
		var r mmx.Reg
		switch in.Op {
		case isa.PSLLW:
			r = mmx.PSllW(dst, uint(n))
		case isa.PSLLD:
			r = mmx.PSllD(dst, uint(n))
		case isa.PSLLQ:
			r = mmx.PSllQ(dst, uint(n))
		case isa.PSRLW:
			r = mmx.PSrlW(dst, uint(n))
		case isa.PSRLD:
			r = mmx.PSrlD(dst, uint(n))
		case isa.PSRLQ:
			r = mmx.PSrlQ(dst, uint(n))
		case isa.PSRAW:
			r = mmx.PSraW(dst, uint(n))
		case isa.PSRAD:
			r = mmx.PSraD(dst, uint(n))
		}
		c.mm[in.A.Reg.MMXIndex()] = r
		return nil
	}

	// All remaining MMX operations are two-operand mm, mm/m64 forms.
	dst, err := c.readMMReg(in.A)
	if err != nil {
		return err
	}
	src, err := c.readMMSrc(in.B, ev)
	if err != nil {
		return err
	}
	f, ok := mmxBinary[in.Op]
	if !ok {
		return c.fault("unimplemented MMX op %s", in.Op)
	}
	c.mm[in.A.Reg.MMXIndex()] = f(dst, src)
	return nil
}

// mmxBinary dispatches two-operand MMX opcodes to their value semantics.
var mmxBinary = map[isa.Op]func(a, b mmx.Reg) mmx.Reg{
	isa.PACKSSWB:  mmx.PackSSWB,
	isa.PACKSSDW:  mmx.PackSSDW,
	isa.PACKUSWB:  mmx.PackUSWB,
	isa.PUNPCKLBW: mmx.PUnpckLBW,
	isa.PUNPCKHBW: mmx.PUnpckHBW,
	isa.PUNPCKLWD: mmx.PUnpckLWD,
	isa.PUNPCKHWD: mmx.PUnpckHWD,
	isa.PUNPCKLDQ: mmx.PUnpckLDQ,
	isa.PUNPCKHDQ: mmx.PUnpckHDQ,
	isa.PADDB:     mmx.PAddB,
	isa.PADDW:     mmx.PAddW,
	isa.PADDD:     mmx.PAddD,
	isa.PADDSB:    mmx.PAddSB,
	isa.PADDSW:    mmx.PAddSW,
	isa.PADDUSB:   mmx.PAddUSB,
	isa.PADDUSW:   mmx.PAddUSW,
	isa.PSUBB:     mmx.PSubB,
	isa.PSUBW:     mmx.PSubW,
	isa.PSUBD:     mmx.PSubD,
	isa.PSUBSB:    mmx.PSubSB,
	isa.PSUBSW:    mmx.PSubSW,
	isa.PSUBUSB:   mmx.PSubUSB,
	isa.PSUBUSW:   mmx.PSubUSW,
	isa.PMADDWD:   mmx.PMAddWD,
	isa.PMULHW:    mmx.PMulHW,
	isa.PMULLW:    mmx.PMulLW,
	isa.PCMPEQB:   mmx.PCmpEqB,
	isa.PCMPEQW:   mmx.PCmpEqW,
	isa.PCMPEQD:   mmx.PCmpEqD,
	isa.PCMPGTB:   mmx.PCmpGtB,
	isa.PCMPGTW:   mmx.PCmpGtW,
	isa.PCMPGTD:   mmx.PCmpGtD,
	isa.PAND:      mmx.PAnd,
	isa.PANDN:     mmx.PAndN,
	isa.POR:       mmx.POr,
	isa.PXOR:      mmx.PXor,
}

func (c *CPU) readMMReg(o isa.Operand) (mmx.Reg, error) {
	if !o.IsReg() || !o.Reg.IsMMX() {
		return 0, c.fault("expected mm register, have %s", o)
	}
	return c.mm[o.Reg.MMXIndex()], nil
}

// readMMSrc reads an mm register or a 64-bit memory operand.
func (c *CPU) readMMSrc(o isa.Operand, ev *Event) (mmx.Reg, error) {
	switch o.Kind {
	case isa.KindReg:
		return c.readMMReg(o)
	case isa.KindMem:
		addr := c.effAddr(o)
		c.chargeAccess(addr, ev)
		if o.Size == isa.SizeD {
			v, ok := c.Mem.LoadU32(addr)
			if !ok {
				return 0, c.fault("mmx dword load out of range at %#x", addr)
			}
			return mmx.Reg(uint64(v)), nil
		}
		v, ok := c.Mem.LoadU64(addr)
		if !ok {
			return 0, c.fault("mmx qword load out of range at %#x", addr)
		}
		return mmx.Reg(v), nil
	}
	return 0, c.fault("bad mmx operand %s", o)
}
