package vm

import (
	"math"
	"strings"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
)

// run assembles, runs and returns the CPU, failing the test on any error.
func run(t *testing.T, build func(b *asm.Builder)) *CPU {
	t.Helper()
	b := asm.NewBuilder("test")
	build(b)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	if err := c.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLoopSum(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(10))
		b.Label("loop")
		b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.ECX))
		b.I(isa.DEC, asm.R(isa.ECX))
		b.J(isa.JNE, "loop")
		b.I(isa.HALT)
	})
	if got := c.GPR(isa.EAX); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestMemoryAndAddressing(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Dwords("arr", []int32{10, 20, 30, 40})
		b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("arr", 0))
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(2))
		// eax = arr[2] via [esi + ecx*4]
		b.I(isa.MOV, asm.R(isa.EAX), asm.MemIdx(isa.SizeD, isa.ESI, isa.ECX, 4, 0))
		// arr[3] = eax + 5
		b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(5))
		b.I(isa.MOV, asm.MemIdx(isa.SizeD, isa.ESI, isa.NoReg, 0, 12), asm.R(isa.EAX))
		// lea edx, [esi + ecx*4 + 4]
		b.I(isa.LEA, asm.R(isa.EDX), asm.MemIdx(isa.SizeD, isa.ESI, isa.ECX, 4, 4))
		b.I(isa.HALT)
	})
	if got := c.GPR(isa.EAX); got != 35 {
		t.Errorf("eax = %d, want 35", got)
	}
	arr := c.Prog.Addr("arr")
	v, _ := c.Mem.LoadU32(arr + 12)
	if v != 35 {
		t.Errorf("arr[3] = %d, want 35", v)
	}
	if got := c.GPR(isa.EDX); got != arr+12 {
		t.Errorf("lea = %#x, want %#x", got, arr+12)
	}
}

func TestByteWordAccess(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Bytes("buf", []byte{0xFF, 0x80, 0x01, 0x00})
		b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("buf", 0))
		b.I(isa.MOVZXB, asm.R(isa.EAX), asm.MemB(isa.ESI, 0)) // 0xFF -> 255
		b.I(isa.MOVSXB, asm.R(isa.EBX), asm.MemB(isa.ESI, 1)) // 0x80 -> -128
		b.I(isa.MOVZXW, asm.R(isa.ECX), asm.MemW(isa.ESI, 0)) // 0x80FF
		b.I(isa.MOVSXW, asm.R(isa.EDX), asm.MemW(isa.ESI, 0)) // sign-extended
		b.I(isa.MOV, asm.MemB(isa.ESI, 3), asm.R(isa.EAX))    // store low byte
		b.I(isa.HALT)
	})
	if c.GPR(isa.EAX) != 255 {
		t.Errorf("movzxb = %d", c.GPR(isa.EAX))
	}
	if int32(c.GPR(isa.EBX)) != -128 {
		t.Errorf("movsxb = %d", int32(c.GPR(isa.EBX)))
	}
	if c.GPR(isa.ECX) != 0x80FF {
		t.Errorf("movzxw = %#x", c.GPR(isa.ECX))
	}
	w := uint16(0x80FF)
	if int32(c.GPR(isa.EDX)) != int32(int16(w)) {
		t.Errorf("movsxw = %d", int32(c.GPR(isa.EDX)))
	}
	v, _ := c.Mem.LoadU8(c.Prog.Addr("buf") + 3)
	if v != 0xFF {
		t.Errorf("byte store = %#x, want 0xff", v)
	}
}

func TestCallRetAndStack(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Proc("main")
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(5))
		b.I(isa.PUSH, asm.R(isa.EAX))
		b.Call("double")
		b.I(isa.POP, asm.R(isa.ECX)) // discard argument
		b.I(isa.HALT)
		b.Proc("double")
		// arg at [esp+4] (above the return address)
		b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.ESP, 4))
		b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EAX))
		b.Ret()
	})
	if got := c.GPR(isa.EAX); got != 10 {
		t.Errorf("call result = %d, want 10", got)
	}
	if got := c.GPR(isa.ESP); got != c.Prog.StackTop() {
		t.Errorf("esp = %#x, want %#x (balanced stack)", got, c.Prog.StackTop())
	}
}

func TestSignedBranches(t *testing.T) {
	// Computes max(-3, 7) using jg.
	c := run(t, func(b *asm.Builder) {
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(-3))
		b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(7))
		b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.EBX))
		b.J(isa.JG, "done")
		b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.EBX))
		b.Label("done")
		b.I(isa.HALT)
	})
	if got := int32(c.GPR(isa.EAX)); got != 7 {
		t.Errorf("max = %d, want 7", got)
	}
}

func TestUnsignedBranches(t *testing.T) {
	// 0xFFFFFFFF > 1 unsigned (ja), but < 0 signed.
	c := run(t, func(b *asm.Builder) {
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(-1)) // 0xFFFFFFFF
		b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(1))
		b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(0))
		b.J(isa.JA, "above")
		b.J(isa.JMP, "done")
		b.Label("above")
		b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(1))
		b.Label("done")
		b.I(isa.HALT)
	})
	if c.GPR(isa.EBX) != 1 {
		t.Error("ja must treat 0xFFFFFFFF as above 1")
	}
}

func TestMulDivCdq(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(-7))
		b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(13))
		b.I(isa.IMUL, asm.R(isa.EBX), asm.R(isa.EAX)) // ebx = -91
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(-100))
		b.I(isa.CDQ)
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(7))
		b.I(isa.IDIV, asm.R(isa.ECX)) // eax = -14, edx = -2
		b.I(isa.HALT)
	})
	if got := int32(c.GPR(isa.EBX)); got != -91 {
		t.Errorf("imul = %d, want -91", got)
	}
	if got := int32(c.GPR(isa.EAX)); got != -14 {
		t.Errorf("idiv quotient = %d, want -14", got)
	}
	if got := int32(c.GPR(isa.EDX)); got != -2 {
		t.Errorf("idiv remainder = %d, want -2", got)
	}
}

func TestShifts(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(-8))
		b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(1)) // -4
		b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(-8))
		b.I(isa.SHR, asm.R(isa.EBX), asm.Imm(28)) // 0xF
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(3))
		b.I(isa.SHL, asm.R(isa.ECX), asm.Imm(4)) // 48
		b.I(isa.HALT)
	})
	if int32(c.GPR(isa.EAX)) != -4 {
		t.Errorf("sar = %d", int32(c.GPR(isa.EAX)))
	}
	if c.GPR(isa.EBX) != 0xF {
		t.Errorf("shr = %#x", c.GPR(isa.EBX))
	}
	if c.GPR(isa.ECX) != 48 {
		t.Errorf("shl = %d", c.GPR(isa.ECX))
	}
}

func TestMMXVectorAdd(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Words("x", []int16{1, 2, 3, 4, 30000, -30000, 5, 6})
		b.Words("y", []int16{10, 20, 30, 40, 10000, -10000, 7, 8})
		b.Reserve("out", 16)
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.Sym(isa.SizeQ, "x", 0))
		b.I(isa.PADDW, asm.R(isa.MM0), asm.Sym(isa.SizeQ, "y", 0))
		b.I(isa.MOVQ, asm.Sym(isa.SizeQ, "out", 0), asm.R(isa.MM0))
		b.I(isa.MOVQ, asm.R(isa.MM1), asm.Sym(isa.SizeQ, "x", 8))
		b.I(isa.PADDSW, asm.R(isa.MM1), asm.Sym(isa.SizeQ, "y", 8))
		b.I(isa.MOVQ, asm.Sym(isa.SizeQ, "out", 8), asm.R(isa.MM1))
		b.I(isa.EMMS)
		b.I(isa.HALT)
	})
	out, _ := c.Mem.ReadInt16s(c.Prog.Addr("out"), 8)
	want := []int16{11, 22, 33, 44, 32767, -32768, 12, 14}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestMMXDotProductPmaddwd(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Words("x", []int16{1, 2, 3, 4})
		b.Words("y", []int16{5, 6, 7, 8})
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.Sym(isa.SizeQ, "x", 0))
		b.I(isa.PMADDWD, asm.R(isa.MM0), asm.Sym(isa.SizeQ, "y", 0))
		// Horizontal add of the two dwords: copy, shift, add.
		b.I(isa.MOVQ, asm.R(isa.MM1), asm.R(isa.MM0))
		b.I(isa.PSRLQ, asm.R(isa.MM1), asm.Imm(32))
		b.I(isa.PADDD, asm.R(isa.MM0), asm.R(isa.MM1))
		b.I(isa.MOVD, asm.R(isa.EAX), asm.R(isa.MM0))
		b.I(isa.EMMS)
		b.I(isa.HALT)
	})
	if got := int32(c.GPR(isa.EAX)); got != 70 {
		t.Errorf("dot product = %d, want 70", got)
	}
}

func TestMMXShiftByRegisterAndImm(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Words("x", []int16{-4, 8, -16, 32})
		b.I(isa.MOVQ, asm.R(isa.MM0), asm.Sym(isa.SizeQ, "x", 0))
		b.I(isa.PSRAW, asm.R(isa.MM0), asm.Imm(2))
		b.I(isa.MOVD, asm.R(isa.ECX), asm.R(isa.MM0)) // low 2 words
		b.I(isa.EMMS)
		b.I(isa.HALT)
	})
	lo := c.GPR(isa.ECX)
	if int16(lo) != -1 || int16(lo>>16) != 2 {
		t.Errorf("psraw lanes = %d, %d; want -1, 2", int16(lo), int16(lo>>16))
	}
}

func TestFPArithmetic(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Doubles("a", []float64{1.5})
		b.Floats("f", []float32{2.25})
		b.Reserve("out", 8)
		b.Reserve("outw", 8)
		b.I(isa.FLD, asm.R(isa.FP0), asm.Sym(isa.SizeQ, "a", 0))
		b.I(isa.FADD, asm.R(isa.FP0), asm.Sym(isa.SizeD, "f", 0)) // 3.75
		b.I(isa.FLDC, asm.R(isa.FP1), asm.Imm(int64(math.Float64bits(2.0))))
		b.I(isa.FMUL, asm.R(isa.FP0), asm.R(isa.FP1)) // 7.5
		b.I(isa.FST, asm.Sym(isa.SizeQ, "out", 0), asm.R(isa.FP0))
		b.I(isa.FIST, asm.Sym(isa.SizeW, "outw", 0), asm.R(isa.FP0)) // rounds to 8
		b.I(isa.HALT)
	})
	raw, _ := c.Mem.LoadU64(c.Prog.Addr("out"))
	if got := math.Float64frombits(raw); got != 7.5 {
		t.Errorf("fp result = %v, want 7.5", got)
	}
	w, _ := c.Mem.ReadInt16s(c.Prog.Addr("outw"), 1)
	if w[0] != 8 {
		t.Errorf("fist = %d, want 8 (round half to even)", w[0])
	}
}

func TestFILDAndFCOM(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.Words("n", []int16{-42})
		b.I(isa.FILD, asm.R(isa.FP0), asm.Sym(isa.SizeW, "n", 0))
		b.I(isa.FLDC, asm.R(isa.FP1), asm.Imm(int64(math.Float64bits(0))))
		b.I(isa.FCOM, asm.R(isa.FP0), asm.R(isa.FP1))
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
		b.J(isa.JAE, "done") // fp0 < fp1 sets CF, so jae falls through
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(1))
		b.Label("done")
		b.I(isa.HALT)
	})
	if c.GPR(isa.EAX) != 1 {
		t.Error("fcom: -42 < 0 must set the below flag")
	}
}

func TestFPAfterMMXWithoutEmmsFaults(t *testing.T) {
	b := asm.NewBuilder("t")
	b.I(isa.PXOR, asm.R(isa.MM0), asm.R(isa.MM0))
	b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP0))
	b.I(isa.HALT)
	c := New(b.MustLink())
	err := c.Run(100)
	if err == nil || !strings.Contains(err.Error(), "emms") {
		t.Errorf("want missing-emms fault, got %v", err)
	}
}

func TestFPAfterEmmsOK(t *testing.T) {
	run(t, func(b *asm.Builder) {
		b.I(isa.PXOR, asm.R(isa.MM0), asm.R(isa.MM0))
		b.I(isa.EMMS)
		b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP0))
		b.I(isa.HALT)
	})
}

func TestDivideByZeroFaults(t *testing.T) {
	b := asm.NewBuilder("t")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(1))
	b.I(isa.CDQ)
	b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(0))
	b.I(isa.IDIV, asm.R(isa.EBX))
	b.I(isa.HALT)
	c := New(b.MustLink())
	if err := c.Run(100); err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Errorf("want divide-by-zero fault, got %v", err)
	}
}

func TestOutOfRangeAccessFaults(t *testing.T) {
	b := asm.NewBuilder("t")
	b.I(isa.MOV, asm.R(isa.ESI), asm.Imm(-8)) // huge unsigned address
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.ESI, 0))
	b.I(isa.HALT)
	c := New(b.MustLink())
	if err := c.Run(100); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("want out-of-range fault, got %v", err)
	}
}

func TestInstructionBudget(t *testing.T) {
	b := asm.NewBuilder("t")
	b.Label("spin")
	b.J(isa.JMP, "spin")
	c := New(b.MustLink())
	if err := c.Run(1000); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("want budget fault, got %v", err)
	}
}

// recorder captures events for observer tests.
type recorder struct{ evs []Event }

func (r *recorder) Retire(ev Event) { r.evs = append(r.evs, ev) }

func TestProfRegionMarksEvents(t *testing.T) {
	b := asm.NewBuilder("t")
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(1)) // unmeasured
	b.I(isa.PROFON)
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(2)) // measured
	b.I(isa.PROFOFF)
	b.I(isa.ADD, asm.R(isa.EAX), asm.Imm(3)) // unmeasured
	b.I(isa.HALT)
	c := New(b.MustLink())
	rec := &recorder{}
	c.Obs = rec
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	// Events: mov, add, add, halt (pseudo ops emit no events).
	if len(rec.evs) != 4 {
		t.Fatalf("got %d events, want 4", len(rec.evs))
	}
	if rec.evs[0].Measured || !rec.evs[1].Measured || rec.evs[2].Measured {
		t.Errorf("measured flags wrong: %v %v %v",
			rec.evs[0].Measured, rec.evs[1].Measured, rec.evs[2].Measured)
	}
	if c.GPR(isa.EAX) != 6 {
		t.Errorf("eax = %d, want 6", c.GPR(isa.EAX))
	}
}

func TestBranchEventTaken(t *testing.T) {
	b := asm.NewBuilder("t")
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(2))
	b.Label("loop")
	b.I(isa.DEC, asm.R(isa.ECX))
	b.J(isa.JNE, "loop")
	b.I(isa.HALT)
	c := New(b.MustLink())
	rec := &recorder{}
	c.Obs = rec
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	var taken, notTaken int
	for _, ev := range rec.evs {
		if ev.Inst.Op == isa.JNE {
			if ev.Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken != 1 || notTaken != 1 {
		t.Errorf("taken=%d notTaken=%d, want 1 and 1", taken, notTaken)
	}
}

func TestNegNotIncFlags(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(5))
		b.I(isa.NEG, asm.R(isa.EAX)) // -5
		b.I(isa.NOT, asm.R(isa.EAX)) // 4
		b.I(isa.HALT)
	})
	if got := int32(c.GPR(isa.EAX)); got != 4 {
		t.Errorf("neg/not = %d, want 4", got)
	}
}

func TestXchg(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(1))
		b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(2))
		b.I(isa.XCHG, asm.R(isa.EAX), asm.R(isa.EBX))
		b.I(isa.HALT)
	})
	if c.GPR(isa.EAX) != 2 || c.GPR(isa.EBX) != 1 {
		t.Errorf("xchg: eax=%d ebx=%d", c.GPR(isa.EAX), c.GPR(isa.EBX))
	}
}

func TestMovdDirections(t *testing.T) {
	c := run(t, func(b *asm.Builder) {
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0x12345678))
		b.I(isa.MOVD, asm.R(isa.MM0), asm.R(isa.EAX))
		b.I(isa.PSLLQ, asm.R(isa.MM0), asm.Imm(8))
		b.I(isa.MOVD, asm.R(isa.EBX), asm.R(isa.MM0))
		b.I(isa.EMMS)
		b.I(isa.HALT)
	})
	if c.GPR(isa.EBX) != 0x34567800 {
		t.Errorf("movd round trip = %#x, want 0x34567800", c.GPR(isa.EBX))
	}
}
