package vm

import (
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
)

// benchProg is a tight integer/memory loop — load, ALU, RMW store, compare
// and branch, the shape of the suite's kernel inner loops — repeated enough
// (~100k retired instructions) that steady-state interpretation dominates
// the per-run CPU construction cost.
func benchProg() *asm.Program {
	b := asm.NewBuilder("bench")
	b.Dwords("data", make([]int32, 64))
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(256))
	b.Label("outer")
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(64))
	b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("data", 0))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
	b.Label("loop")
	b.I(isa.MOV, asm.R(isa.EBX), asm.MemD(isa.ESI, 0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EBX))
	b.I(isa.ADD, asm.MemD(isa.ESI, 0), asm.Imm(3))
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(4))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(1))
	b.J(isa.JNE, "loop")
	b.I(isa.SUB, asm.R(isa.EDX), asm.Imm(1))
	b.J(isa.JNE, "outer")
	b.I(isa.HALT)
	return b.MustLink()
}

// BenchmarkStep compares the two interpreter inner loops on the same
// program. The metric of interest is ns per retired instruction.
func BenchmarkStep(b *testing.B) {
	prog := benchProg()
	run := func(b *testing.B, mk func() *CPU) {
		b.Helper()
		n := int64(0)
		for i := 0; i < b.N; i++ {
			c := mk()
			if err := c.Run(1 << 20); err != nil {
				b.Fatal(err)
			}
			n += c.Executed()
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(n), "ns/instr")
	}
	b.Run("generic", func(b *testing.B) {
		run(b, func() *CPU {
			c := New(prog)
			c.Generic = true
			return c
		})
	})
	b.Run("predecoded", func(b *testing.B) {
		code := Compile(prog)
		run(b, func() *CPU {
			c := NewWithCode(code)
			// With no observer the block loop would engage; pin the
			// per-event predecoded loop this subbenchmark measures.
			c.NoBlocks = true
			return c
		})
	})
	b.Run("block", func(b *testing.B) {
		code := Compile(prog)
		run(b, func() *CPU { return NewWithCode(code) })
	})
	b.Run("trace", func(b *testing.B) {
		code := Compile(prog)
		run(b, func() *CPU {
			c := NewWithCode(code)
			c.Traces = true
			return c
		})
	})
}

// BenchmarkBlockStep measures the block-dispatch loop alone (no observer:
// fused superhandlers with batched retirement bookkeeping). scripts/check.sh
// runs it for one iteration as a smoke test.
func BenchmarkBlockStep(b *testing.B) {
	prog := benchProg()
	code := Compile(prog)
	n := int64(0)
	for i := 0; i < b.N; i++ {
		c := NewWithCode(code)
		if err := c.Run(1 << 20); err != nil {
			b.Fatal(err)
		}
		n += c.Executed()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(n), "ns/instr")
}

// BenchmarkTraceStep measures the trace-dispatch loop alone (no observer:
// superblocks with registers cached in locals). scripts/check.sh runs it
// for one iteration as a smoke test.
func BenchmarkTraceStep(b *testing.B) {
	prog := benchProg()
	code := Compile(prog)
	n := int64(0)
	for i := 0; i < b.N; i++ {
		c := NewWithCode(code)
		c.Traces = true
		if err := c.Run(1 << 20); err != nil {
			b.Fatal(err)
		}
		n += c.Executed()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(n), "ns/instr")
}

// BenchmarkCompile measures the one-time predecode cost itself.
func BenchmarkCompile(b *testing.B) {
	prog := benchProg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compile(prog)
	}
}
