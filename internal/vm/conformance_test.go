package vm

import (
	"math"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
)

// TestEveryOpcodeExecutes builds one program that retires every
// non-pseudo opcode in the ISA at least once and checks a handful of
// end-state invariants. Opcodes the program misses fail the test, so the
// ISA can't grow silently untested.
func TestEveryOpcodeExecutes(t *testing.T) {
	b := asm.NewBuilder("conformance")
	b.Words("w16", []int16{100, -100, 32000, -32000})
	b.Words("w16b", []int16{3, 5, -7, 9})
	b.Dwords("d32", []int32{1 << 20, -9})
	b.Doubles("f64", []float64{2.5})
	b.Floats("f32", []float32{1.5})
	b.Reserve("scratch", 64)

	b.Proc("main")
	// Integer movement and ALU.
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(7))
	b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(3))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EBX))
	b.I(isa.ADC, asm.R(isa.EAX), asm.Imm(0))
	b.I(isa.SUB, asm.R(isa.EAX), asm.Imm(1))
	b.I(isa.SBB, asm.R(isa.EAX), asm.Imm(0))
	b.I(isa.AND, asm.R(isa.EAX), asm.Imm(0xFF))
	b.I(isa.OR, asm.R(isa.EAX), asm.Imm(0x10))
	b.I(isa.XOR, asm.R(isa.EBX), asm.R(isa.EBX))
	b.I(isa.NOT, asm.R(isa.EBX))
	b.I(isa.NEG, asm.R(isa.EBX))
	b.I(isa.INC, asm.R(isa.EBX))
	b.I(isa.DEC, asm.R(isa.EBX))
	b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.EBX))
	b.I(isa.TEST, asm.R(isa.EAX), asm.R(isa.EAX))
	b.I(isa.SHL, asm.R(isa.EAX), asm.Imm(2))
	b.I(isa.SHR, asm.R(isa.EAX), asm.Imm(1))
	b.I(isa.SAR, asm.R(isa.EAX), asm.Imm(1))
	b.I(isa.XCHG, asm.R(isa.EAX), asm.R(isa.EBX))
	b.I(isa.XCHG, asm.R(isa.EAX), asm.R(isa.EBX))
	b.I(isa.LEA, asm.R(isa.ESI), asm.SymIdx(isa.SizeD, "scratch", isa.EBX, 1, 0))
	b.I(isa.MOVZXB, asm.R(isa.ECX), asm.Sym(isa.SizeB, "w16", 0))
	b.I(isa.MOVSXB, asm.R(isa.ECX), asm.Sym(isa.SizeB, "w16", 1))
	b.I(isa.MOVZXW, asm.R(isa.ECX), asm.Sym(isa.SizeW, "w16", 0))
	b.I(isa.MOVSXW, asm.R(isa.ECX), asm.Sym(isa.SizeW, "w16", 2))
	b.I(isa.PUSH, asm.R(isa.EAX))
	b.I(isa.POP, asm.R(isa.EDX))
	b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(-100))
	b.I(isa.CDQ)
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(7))
	b.I(isa.IDIV, asm.R(isa.ECX))
	b.I(isa.IMUL, asm.R(isa.EAX), asm.Imm(3))

	// Every conditional branch, taken or not.
	for _, cc := range []isa.Op{isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG,
		isa.JGE, isa.JB, isa.JBE, isa.JA, isa.JAE, isa.JS, isa.JNS} {
		lbl := "cc_" + cc.Name()
		b.I(isa.CMP, asm.R(isa.EAX), asm.R(isa.EAX)) // equal
		b.J(cc, lbl)
		b.Label(lbl)
	}
	b.J(isa.JMP, "fp")

	// FP section.
	b.Label("fp")
	b.I(isa.FLD, asm.R(isa.FP0), asm.Sym(isa.SizeQ, "f64", 0))
	b.I(isa.FLD, asm.R(isa.FP1), asm.Sym(isa.SizeD, "f32", 0))
	b.I(isa.FLDC, asm.R(isa.FP2), asm.Imm(int64(math.Float64bits(0.5))))
	b.I(isa.FILD, asm.R(isa.FP3), asm.Sym(isa.SizeW, "w16", 0))
	b.I(isa.FADD, asm.R(isa.FP0), asm.R(isa.FP1))
	b.I(isa.FSUB, asm.R(isa.FP0), asm.R(isa.FP2))
	b.I(isa.FSUBR, asm.R(isa.FP2), asm.R(isa.FP0))
	b.I(isa.FMUL, asm.R(isa.FP0), asm.R(isa.FP1))
	b.I(isa.FDIV, asm.R(isa.FP0), asm.R(isa.FP1))
	b.I(isa.FCHS, asm.R(isa.FP0))
	b.I(isa.FABS, asm.R(isa.FP0))
	b.I(isa.FSQRT, asm.R(isa.FP0))
	b.I(isa.FSIN, asm.R(isa.FP3))
	b.I(isa.FCOS, asm.R(isa.FP3))
	b.I(isa.FCOM, asm.R(isa.FP0), asm.R(isa.FP1))
	b.I(isa.FST, asm.Sym(isa.SizeQ, "scratch", 0), asm.R(isa.FP0))
	b.I(isa.FST, asm.Sym(isa.SizeD, "scratch", 8), asm.R(isa.FP0))
	b.I(isa.FIST, asm.Sym(isa.SizeW, "scratch", 12), asm.R(isa.FP0))
	b.I(isa.FIST, asm.Sym(isa.SizeD, "scratch", 16), asm.R(isa.FP0))

	// MMX section: every packed operation.
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.Sym(isa.SizeQ, "w16", 0))
	b.I(isa.MOVQ, asm.R(isa.MM1), asm.Sym(isa.SizeQ, "w16b", 0))
	b.I(isa.MOVD, asm.R(isa.MM2), asm.R(isa.EAX))
	b.I(isa.MOVD, asm.R(isa.EDX), asm.R(isa.MM2))
	for _, op := range []isa.Op{
		isa.PACKSSWB, isa.PACKSSDW, isa.PACKUSWB,
		isa.PUNPCKLBW, isa.PUNPCKHBW, isa.PUNPCKLWD, isa.PUNPCKHWD,
		isa.PUNPCKLDQ, isa.PUNPCKHDQ,
		isa.PADDB, isa.PADDW, isa.PADDD, isa.PADDSB, isa.PADDSW,
		isa.PADDUSB, isa.PADDUSW,
		isa.PSUBB, isa.PSUBW, isa.PSUBD, isa.PSUBSB, isa.PSUBSW,
		isa.PSUBUSB, isa.PSUBUSW,
		isa.PMADDWD, isa.PMULHW, isa.PMULLW,
		isa.PCMPEQB, isa.PCMPEQW, isa.PCMPEQD,
		isa.PCMPGTB, isa.PCMPGTW, isa.PCMPGTD,
		isa.PAND, isa.PANDN, isa.POR, isa.PXOR,
	} {
		b.I(isa.MOVQ, asm.R(isa.MM3), asm.R(isa.MM0))
		b.I(op, asm.R(isa.MM3), asm.R(isa.MM1))
	}
	for _, op := range []isa.Op{isa.PSLLW, isa.PSLLD, isa.PSLLQ,
		isa.PSRLW, isa.PSRLD, isa.PSRLQ, isa.PSRAW, isa.PSRAD} {
		b.I(isa.MOVQ, asm.R(isa.MM3), asm.R(isa.MM0))
		b.I(op, asm.R(isa.MM3), asm.Imm(3))
	}
	b.I(isa.MOVQ, asm.Sym(isa.SizeQ, "scratch", 24), asm.R(isa.MM3))
	b.I(isa.EMMS)

	// Call/ret and pseudo ops.
	b.Call("leaf")
	b.I(isa.NOP)
	b.I(isa.PROFON)
	b.I(isa.PROFOFF)
	b.I(isa.HALT)
	b.Proc("leaf")
	b.Ret()

	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}

	// Static coverage: which opcodes appear in the program text.
	inProgram := map[isa.Op]bool{}
	for _, in := range p.Insts {
		inProgram[in.Op] = true
	}
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		if op == isa.BAD {
			continue
		}
		if !inProgram[op] {
			t.Errorf("conformance program does not contain opcode %s", op)
		}
	}

	// Dynamic: every instruction must retire without faulting.
	executed := map[isa.Op]bool{}
	c := New(p)
	c.Obs = obsFunc(func(ev Event) { executed[ev.Inst.Op] = true })
	if err := c.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	for op := range inProgram {
		if op.IsPseudo() && op != isa.HALT {
			continue // pseudo ops emit no events
		}
		if !executed[op] {
			t.Errorf("opcode %s present but never retired", op)
		}
	}
}

type obsFunc func(Event)

func (f obsFunc) Retire(ev Event) { f(ev) }
