// Predecode: a one-time compilation pass that lowers each instruction of a
// linked Program into a specialized handler closure with operand access
// resolved up front. The interpreter inner loop then becomes "indexed fetch
// -> call handler -> retire", instead of re-switching on op family and
// operand kinds for every one of the millions of retired instructions.
//
// Specialized handlers exist for the hot shapes (reg-reg, reg-imm, and the
// [disp], [base+disp], [index*scale+disp], [base+index*scale+disp] address
// forms at each access width). Anything else — including every shape whose
// generic execution would fault — falls back to a closure around the
// original execInt/execFP/execMMX path, so no opcode is left behind and
// fault messages stay byte-identical to the generic interpreter's.
package vm

import (
	"math"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mmx"
)

// execFn performs one predecoded instruction. The loop has already created
// ev (PC, Inst, Measured) and bumped the executed counter; the handler does
// the architectural work and sets ev.Taken/ev.MemPenalty as needed.
type execFn func(*CPU, *Event) error

// decoded-instruction kinds: pseudo instructions bypass event creation.
const (
	dNormal uint8 = iota
	dNop
	dProfOn
	dProfOff
)

type decoded struct {
	exec execFn
	inst *isa.Inst
	kind uint8
	// spec marks a specialized handler (compileSpecialized succeeded);
	// refsMem marks instructions with memory references. Both feed the
	// fused-block eligibility test in block.go.
	spec    bool
	refsMem bool
}

// Code is a predecoded program: one handler per PC. A Code value is
// immutable after Compile and may be shared by any number of CPUs running
// the same program (it holds no execution state).
type Code struct {
	prog *asm.Program
	ops  []decoded
	// blocks and blockOf are the block-dispatch tables (see block.go):
	// one vmBlock per basic block, and the owning block index per PC.
	blocks  []vmBlock
	blockOf []int32
}

// Compile predecodes a linked program. The cost is one pass over the static
// instructions; every CPU built from the result skips per-step decode.
func Compile(p *asm.Program) *Code {
	c := &Code{prog: p, ops: make([]decoded, len(p.Insts))}
	meta := p.InstMeta()
	for i := range p.Insts {
		in := &p.Insts[i]
		d := &c.ops[i]
		d.inst = in
		d.refsMem = meta[i].RefsMem
		switch in.Op {
		case isa.NOP:
			d.kind = dNop
		case isa.PROFON:
			d.kind = dProfOn
		case isa.PROFOFF:
			d.kind = dProfOff
		default:
			d.kind = dNormal
			if h := compileSpecialized(in); h != nil {
				d.exec = h
				d.spec = true
			} else {
				d.exec = genericExec(in)
			}
		}
	}
	c.buildBlocks()
	return c
}

// genericExec wraps the unspecialized execution path for one instruction.
func genericExec(in *isa.Inst) execFn {
	switch {
	case in.Op.IsMMX():
		return func(c *CPU, ev *Event) error { return c.execMMX(in, ev) }
	case in.Op.IsFP():
		return func(c *CPU, ev *Event) error { return c.execFP(in, ev) }
	default:
		return func(c *CPU, ev *Event) error { return c.execInt(in, ev) }
	}
}

// ---------------------------------------------------------------------------
// Operand access compilers. Each returns nil when the operand shape is not
// specialized (or would fault), sending the instruction to the generic path.

// compileAddr resolves the effective-address shape of a memory operand.
func compileAddr(o isa.Operand) func(*CPU) uint32 {
	disp := uint32(o.Disp)
	s := uint32(o.Scale)
	if s == 0 {
		s = 1
	}
	switch {
	case o.Reg == isa.NoReg && o.Index == isa.NoReg:
		return func(*CPU) uint32 { return disp }
	case o.Index == isa.NoReg:
		b := o.Reg.GPRIndex()
		return func(c *CPU) uint32 { return c.gpr[b] + disp }
	case o.Reg == isa.NoReg:
		x := o.Index.GPRIndex()
		return func(c *CPU) uint32 { return c.gpr[x]*s + disp }
	default:
		b, x := o.Reg.GPRIndex(), o.Index.GPRIndex()
		return func(c *CPU) uint32 { return c.gpr[b] + c.gpr[x]*s + disp }
	}
}

// compileLoad builds a sized integer load (loadSized equivalent).
func compileLoad(o isa.Operand) func(*CPU, *Event) (uint32, error) {
	addr := compileAddr(o)
	if o.Reg != isa.NoReg && !o.Reg.IsGPR() {
		return nil
	}
	if o.Index != isa.NoReg && !o.Index.IsGPR() {
		return nil
	}
	switch o.Size {
	case isa.SizeB:
		return func(c *CPU, ev *Event) (uint32, error) {
			a := addr(c)
			ev.MemPenalty += c.Hier.Access(a)
			v, ok := c.Mem.LoadU8(a)
			if !ok {
				return 0, c.fault("load byte out of range at %#x", a)
			}
			return uint32(v), nil
		}
	case isa.SizeW:
		return func(c *CPU, ev *Event) (uint32, error) {
			a := addr(c)
			ev.MemPenalty += c.Hier.Access(a)
			v, ok := c.Mem.LoadU16(a)
			if !ok {
				return 0, c.fault("load word out of range at %#x", a)
			}
			return uint32(v), nil
		}
	case isa.SizeD, isa.SizeNone:
		return func(c *CPU, ev *Event) (uint32, error) {
			a := addr(c)
			ev.MemPenalty += c.Hier.Access(a)
			v, ok := c.Mem.LoadU32(a)
			if !ok {
				return 0, c.fault("load dword out of range at %#x", a)
			}
			return v, nil
		}
	}
	return nil
}

// compileStore builds a sized integer store (storeSized equivalent).
func compileStore(o isa.Operand) func(*CPU, uint32, *Event) error {
	addr := compileAddr(o)
	if o.Reg != isa.NoReg && !o.Reg.IsGPR() {
		return nil
	}
	if o.Index != isa.NoReg && !o.Index.IsGPR() {
		return nil
	}
	switch o.Size {
	case isa.SizeB:
		return func(c *CPU, v uint32, ev *Event) error {
			a := addr(c)
			ev.MemPenalty += c.Hier.Access(a)
			if !c.Mem.StoreU8(a, uint8(v)) {
				return c.fault("store out of range at %#x", a)
			}
			return nil
		}
	case isa.SizeW:
		return func(c *CPU, v uint32, ev *Event) error {
			a := addr(c)
			ev.MemPenalty += c.Hier.Access(a)
			if !c.Mem.StoreU16(a, uint16(v)) {
				return c.fault("store out of range at %#x", a)
			}
			return nil
		}
	case isa.SizeD, isa.SizeNone:
		return func(c *CPU, v uint32, ev *Event) error {
			a := addr(c)
			ev.MemPenalty += c.Hier.Access(a)
			if !c.Mem.StoreU32(a, v) {
				return c.fault("store out of range at %#x", a)
			}
			return nil
		}
	}
	return nil
}

// compileReadInt builds a readInt equivalent for the operand.
func compileReadInt(o isa.Operand) func(*CPU, *Event) (uint32, error) {
	switch o.Kind {
	case isa.KindReg:
		if !o.Reg.IsGPR() {
			return nil
		}
		i := o.Reg.GPRIndex()
		return func(c *CPU, _ *Event) (uint32, error) { return c.gpr[i], nil }
	case isa.KindImm:
		v := uint32(o.Imm)
		return func(*CPU, *Event) (uint32, error) { return v, nil }
	case isa.KindMem:
		return compileLoad(o)
	}
	return nil
}

// compileWriteInt builds a writeInt equivalent for the operand.
func compileWriteInt(o isa.Operand) func(*CPU, uint32, *Event) error {
	switch o.Kind {
	case isa.KindReg:
		if !o.Reg.IsGPR() {
			return nil
		}
		i := o.Reg.GPRIndex()
		return func(c *CPU, v uint32, _ *Event) error { c.gpr[i] = v; return nil }
	case isa.KindMem:
		return compileStore(o)
	}
	return nil
}

// gprDst returns the GPR index of a plain register destination, or -1.
func gprDst(o isa.Operand) int {
	if o.Kind == isa.KindReg && o.Reg.IsGPR() {
		return o.Reg.GPRIndex()
	}
	return -1
}

// ---------------------------------------------------------------------------
// Integer and control-flow compilation

// aluFn computes one two-operand ALU result and sets flags.
type aluFn func(c *CPU, a, b uint32) uint32

// compileALU specializes the read A / read B / compute / write A pattern
// shared by the two-operand ALU ops. write selects whether the result is
// stored back (false for cmp/test).
func compileALU(in *isa.Inst, f aluFn, write bool) execFn {
	ra, rb := compileReadInt(in.A), compileReadInt(in.B)
	if ra == nil || rb == nil {
		return nil
	}
	var w func(*CPU, uint32, *Event) error
	if write {
		if w = compileWriteInt(in.A); w == nil {
			return nil
		}
	}
	if d := gprDst(in.A); d >= 0 {
		// Register destination: dst read/write is direct array access.
		if in.B.Kind == isa.KindImm {
			bv := uint32(in.B.Imm)
			if write {
				return func(c *CPU, _ *Event) error {
					c.gpr[d] = f(c, c.gpr[d], bv)
					return nil
				}
			}
			return func(c *CPU, _ *Event) error { f(c, c.gpr[d], bv); return nil }
		}
		if s := gprDst(in.B); s >= 0 {
			if write {
				return func(c *CPU, _ *Event) error {
					c.gpr[d] = f(c, c.gpr[d], c.gpr[s])
					return nil
				}
			}
			return func(c *CPU, _ *Event) error { f(c, c.gpr[d], c.gpr[s]); return nil }
		}
		if write {
			return func(c *CPU, ev *Event) error {
				b, err := rb(c, ev)
				if err != nil {
					return err
				}
				c.gpr[d] = f(c, c.gpr[d], b)
				return nil
			}
		}
		return func(c *CPU, ev *Event) error {
			b, err := rb(c, ev)
			if err != nil {
				return err
			}
			f(c, c.gpr[d], b)
			return nil
		}
	}
	// Memory destination: same read/compute/write order as the generic
	// path, including the double access charge on read-modify-write.
	return func(c *CPU, ev *Event) error {
		a, err := ra(c, ev)
		if err != nil {
			return err
		}
		b, err := rb(c, ev)
		if err != nil {
			return err
		}
		r := f(c, a, b)
		if write {
			return w(c, r, ev)
		}
		return nil
	}
}

// condFn builds the flag predicate for a conditional branch opcode.
func condFn(op isa.Op) func(*CPU) bool {
	switch op {
	case isa.JE:
		return func(c *CPU) bool { return c.zf }
	case isa.JNE:
		return func(c *CPU) bool { return !c.zf }
	case isa.JL:
		return func(c *CPU) bool { return c.sf != c.of }
	case isa.JLE:
		return func(c *CPU) bool { return c.zf || c.sf != c.of }
	case isa.JG:
		return func(c *CPU) bool { return !c.zf && c.sf == c.of }
	case isa.JGE:
		return func(c *CPU) bool { return c.sf == c.of }
	case isa.JB:
		return func(c *CPU) bool { return c.cf }
	case isa.JBE:
		return func(c *CPU) bool { return c.cf || c.zf }
	case isa.JA:
		return func(c *CPU) bool { return !c.cf && !c.zf }
	case isa.JAE:
		return func(c *CPU) bool { return !c.cf }
	case isa.JS:
		return func(c *CPU) bool { return c.sf }
	case isa.JNS:
		return func(c *CPU) bool { return !c.sf }
	}
	return nil
}

func compileSpecialized(in *isa.Inst) execFn {
	switch in.Op {
	case isa.MOV:
		r, w := compileReadInt(in.B), compileWriteInt(in.A)
		if r == nil || w == nil {
			return nil
		}
		if d := gprDst(in.A); d >= 0 {
			if s := gprDst(in.B); s >= 0 {
				return func(c *CPU, _ *Event) error { c.gpr[d] = c.gpr[s]; return nil }
			}
			if in.B.Kind == isa.KindImm {
				v := uint32(in.B.Imm)
				return func(c *CPU, _ *Event) error { c.gpr[d] = v; return nil }
			}
			return func(c *CPU, ev *Event) error {
				v, err := r(c, ev)
				if err != nil {
					return err
				}
				c.gpr[d] = v
				return nil
			}
		}
		return func(c *CPU, ev *Event) error {
			v, err := r(c, ev)
			if err != nil {
				return err
			}
			return w(c, v, ev)
		}

	case isa.MOVZXB, isa.MOVZXW, isa.MOVSXB, isa.MOVSXW:
		return compileExtend(in)

	case isa.LEA:
		if !in.B.IsMem() {
			return nil
		}
		if in.B.Reg != isa.NoReg && !in.B.Reg.IsGPR() {
			return nil
		}
		if in.B.Index != isa.NoReg && !in.B.Index.IsGPR() {
			return nil
		}
		addr := compileAddr(in.B)
		if d := gprDst(in.A); d >= 0 {
			return func(c *CPU, _ *Event) error { c.gpr[d] = addr(c); return nil }
		}
		return nil

	case isa.XCHG:
		if gprDst(in.A) < 0 || gprDst(in.B) < 0 {
			return nil
		}
		i, j := in.A.Reg.GPRIndex(), in.B.Reg.GPRIndex()
		return func(c *CPU, _ *Event) error {
			c.gpr[i], c.gpr[j] = c.gpr[j], c.gpr[i]
			return nil
		}

	case isa.PUSH:
		r := compileReadInt(in.A)
		if r == nil {
			return nil
		}
		return func(c *CPU, ev *Event) error {
			v, err := r(c, ev)
			if err != nil {
				return err
			}
			return c.push32(v, ev)
		}
	case isa.POP:
		w := compileWriteInt(in.A)
		if w == nil {
			return nil
		}
		return func(c *CPU, ev *Event) error {
			v, err := c.pop32(ev)
			if err != nil {
				return err
			}
			return w(c, v, ev)
		}

	case isa.ADD:
		return compileALU(in, func(c *CPU, a, b uint32) uint32 {
			r := a + b
			c.setAdd(a, b, r)
			return r
		}, true)
	case isa.SUB:
		return compileALU(in, func(c *CPU, a, b uint32) uint32 {
			r := a - b
			c.setSub(a, b, r)
			return r
		}, true)
	case isa.CMP:
		return compileALU(in, func(c *CPU, a, b uint32) uint32 {
			c.setSub(a, b, a-b)
			return 0
		}, false)
	case isa.AND:
		return compileALU(in, func(c *CPU, a, b uint32) uint32 {
			r := a & b
			c.setLogic(r)
			return r
		}, true)
	case isa.TEST:
		return compileALU(in, func(c *CPU, a, b uint32) uint32 {
			c.setLogic(a & b)
			return 0
		}, false)
	case isa.OR:
		return compileALU(in, func(c *CPU, a, b uint32) uint32 {
			r := a | b
			c.setLogic(r)
			return r
		}, true)
	case isa.XOR:
		return compileALU(in, func(c *CPU, a, b uint32) uint32 {
			r := a ^ b
			c.setLogic(r)
			return r
		}, true)
	case isa.IMUL:
		return compileALU(in, func(c *CPU, a, b uint32) uint32 {
			full := int64(int32(a)) * int64(int32(b))
			r := uint32(full)
			c.cf = full != int64(int32(r))
			c.of = c.cf
			return r
		}, true)

	case isa.NOT:
		d := gprDst(in.A)
		if d < 0 {
			return nil
		}
		return func(c *CPU, _ *Event) error { c.gpr[d] = ^c.gpr[d]; return nil }
	case isa.NEG:
		d := gprDst(in.A)
		if d < 0 {
			return nil
		}
		return func(c *CPU, _ *Event) error {
			a := c.gpr[d]
			r := -a
			c.setSub(0, a, r)
			c.gpr[d] = r
			return nil
		}
	case isa.INC:
		d := gprDst(in.A)
		if d < 0 {
			return nil
		}
		return func(c *CPU, _ *Event) error {
			r := c.gpr[d] + 1
			c.of = r == 0x80000000
			c.setZS(r)
			c.gpr[d] = r
			return nil
		}
	case isa.DEC:
		d := gprDst(in.A)
		if d < 0 {
			return nil
		}
		return func(c *CPU, _ *Event) error {
			a := c.gpr[d]
			r := a - 1
			c.of = a == 0x80000000
			c.setZS(r)
			c.gpr[d] = r
			return nil
		}

	case isa.SHL, isa.SHR, isa.SAR:
		return compileShift(in)

	case isa.CDQ:
		return func(c *CPU, _ *Event) error {
			if int32(c.gpr[isa.EAX.GPRIndex()]) < 0 {
				c.gpr[isa.EDX.GPRIndex()] = 0xFFFFFFFF
			} else {
				c.gpr[isa.EDX.GPRIndex()] = 0
			}
			return nil
		}

	case isa.JMP:
		t := int(in.Target)
		return func(c *CPU, ev *Event) error {
			c.pc = t
			ev.Taken = true
			return nil
		}
	case isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JBE, isa.JA, isa.JAE, isa.JS, isa.JNS:
		t := int(in.Target)
		cond := condFn(in.Op)
		return func(c *CPU, ev *Event) error {
			if cond(c) {
				c.pc = t
				ev.Taken = true
			}
			return nil
		}
	case isa.CALL:
		t := int(in.Target)
		return func(c *CPU, ev *Event) error {
			if err := c.push32(uint32(c.pc+1), ev); err != nil {
				return err
			}
			c.pc = t
			ev.Taken = true
			return nil
		}
	case isa.RET:
		return func(c *CPU, ev *Event) error {
			ra, err := c.pop32(ev)
			if err != nil {
				return err
			}
			c.pc = int(ra)
			ev.Taken = true
			return nil
		}
	case isa.HALT:
		return func(c *CPU, ev *Event) error {
			c.halted = true
			ev.Taken = true
			ev.Target = c.pc
			return nil
		}
	}

	if in.Op.IsMMX() {
		return compileMMX(in)
	}
	if in.Op.IsFP() {
		return compileFP(in)
	}
	return nil
}

// compileExtend specializes movzx/movsx.
func compileExtend(in *isa.Inst) execFn {
	d := gprDst(in.A)
	if d < 0 {
		return nil
	}
	var size isa.Size
	switch in.Op {
	case isa.MOVZXB, isa.MOVSXB:
		size = isa.SizeB
	default:
		size = isa.SizeW
	}
	var src func(*CPU, *Event) (uint32, error)
	if s := gprDst(in.B); s >= 0 {
		src = func(c *CPU, _ *Event) (uint32, error) { return c.gpr[s], nil }
	} else if in.B.IsMem() {
		o := in.B
		o.Size = size
		if src = compileLoad(o); src == nil {
			return nil
		}
	} else {
		return nil
	}
	switch in.Op {
	case isa.MOVZXB:
		return func(c *CPU, ev *Event) error {
			v, err := src(c, ev)
			if err != nil {
				return err
			}
			c.gpr[d] = v & 0xFF
			return nil
		}
	case isa.MOVZXW:
		return func(c *CPU, ev *Event) error {
			v, err := src(c, ev)
			if err != nil {
				return err
			}
			c.gpr[d] = v & 0xFFFF
			return nil
		}
	case isa.MOVSXB:
		return func(c *CPU, ev *Event) error {
			v, err := src(c, ev)
			if err != nil {
				return err
			}
			c.gpr[d] = uint32(int32(int8(v)))
			return nil
		}
	default: // MOVSXW
		return func(c *CPU, ev *Event) error {
			v, err := src(c, ev)
			if err != nil {
				return err
			}
			c.gpr[d] = uint32(int32(int16(v)))
			return nil
		}
	}
}

// compileShift specializes shl/shr/sar with a register destination and an
// immediate count. A zero count (after masking) leaves flags untouched and
// performs no write, matching the generic path.
func compileShift(in *isa.Inst) execFn {
	d := gprDst(in.A)
	if d < 0 || in.B.Kind != isa.KindImm {
		return nil
	}
	cnt := uint32(in.B.Imm) & 31
	if cnt == 0 {
		return func(*CPU, *Event) error { return nil }
	}
	switch in.Op {
	case isa.SHL:
		return func(c *CPU, _ *Event) error {
			a := c.gpr[d]
			r := a << cnt
			c.cf = a&(1<<(32-cnt)) != 0
			c.setZS(r)
			c.of = false
			c.gpr[d] = r
			return nil
		}
	case isa.SHR:
		return func(c *CPU, _ *Event) error {
			a := c.gpr[d]
			r := a >> cnt
			c.cf = a&(1<<(cnt-1)) != 0
			c.setZS(r)
			c.of = false
			c.gpr[d] = r
			return nil
		}
	default: // SAR
		return func(c *CPU, _ *Event) error {
			a := c.gpr[d]
			r := uint32(int32(a) >> cnt)
			c.cf = a&(1<<(cnt-1)) != 0
			c.setZS(r)
			c.of = false
			c.gpr[d] = r
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// MMX compilation

// compileReadMM builds a readMMSrc equivalent (mm register or 64-bit memory).
func compileReadMM(o isa.Operand) func(*CPU, *Event) (mmx.Reg, error) {
	switch o.Kind {
	case isa.KindReg:
		if !o.Reg.IsMMX() {
			return nil
		}
		i := o.Reg.MMXIndex()
		return func(c *CPU, _ *Event) (mmx.Reg, error) { return c.mm[i], nil }
	case isa.KindMem:
		if o.Reg != isa.NoReg && !o.Reg.IsGPR() {
			return nil
		}
		if o.Index != isa.NoReg && !o.Index.IsGPR() {
			return nil
		}
		addr := compileAddr(o)
		if o.Size == isa.SizeD {
			return func(c *CPU, ev *Event) (mmx.Reg, error) {
				a := addr(c)
				ev.MemPenalty += c.Hier.Access(a)
				v, ok := c.Mem.LoadU32(a)
				if !ok {
					return 0, c.fault("mmx dword load out of range at %#x", a)
				}
				return mmx.Reg(uint64(v)), nil
			}
		}
		return func(c *CPU, ev *Event) (mmx.Reg, error) {
			a := addr(c)
			ev.MemPenalty += c.Hier.Access(a)
			v, ok := c.Mem.LoadU64(a)
			if !ok {
				return 0, c.fault("mmx qword load out of range at %#x", a)
			}
			return mmx.Reg(v), nil
		}
	}
	return nil
}

func compileMMX(in *isa.Inst) execFn {
	if in.Op == isa.EMMS {
		return func(c *CPU, _ *Event) error { c.mmxActive = false; return nil }
	}

	switch in.Op {
	case isa.MOVD:
		if in.A.IsReg() && in.A.Reg.IsMMX() {
			d := in.A.Reg.MMXIndex()
			r := compileReadInt(in.B)
			if r == nil {
				return nil
			}
			return func(c *CPU, ev *Event) error {
				c.mmxActive = true
				v, err := r(c, ev)
				if err != nil {
					return err
				}
				c.mm[d] = mmx.Reg(uint64(v))
				return nil
			}
		}
		src := compileReadMM(in.B)
		w := compileWriteInt(in.A)
		if src == nil || w == nil {
			return nil
		}
		return func(c *CPU, ev *Event) error {
			c.mmxActive = true
			v, err := src(c, ev)
			if err != nil {
				return err
			}
			return w(c, uint32(v), ev)
		}

	case isa.MOVQ:
		if in.A.IsReg() && in.A.Reg.IsMMX() {
			d := in.A.Reg.MMXIndex()
			if in.B.IsReg() && in.B.Reg.IsMMX() {
				s := in.B.Reg.MMXIndex()
				return func(c *CPU, _ *Event) error {
					c.mmxActive = true
					c.mm[d] = c.mm[s]
					return nil
				}
			}
			src := compileReadMM(in.B)
			if src == nil {
				return nil
			}
			return func(c *CPU, ev *Event) error {
				c.mmxActive = true
				v, err := src(c, ev)
				if err != nil {
					return err
				}
				c.mm[d] = v
				return nil
			}
		}
		if !in.A.IsMem() {
			return nil
		}
		if in.A.Reg != isa.NoReg && !in.A.Reg.IsGPR() {
			return nil
		}
		if in.A.Index != isa.NoReg && !in.A.Index.IsGPR() {
			return nil
		}
		src := compileReadMM(in.B)
		if src == nil {
			return nil
		}
		addr := compileAddr(in.A)
		return func(c *CPU, ev *Event) error {
			c.mmxActive = true
			v, err := src(c, ev)
			if err != nil {
				return err
			}
			a := addr(c)
			ev.MemPenalty += c.Hier.Access(a)
			if !c.Mem.StoreU64(a, uint64(v)) {
				return c.fault("movq store out of range at %#x", a)
			}
			return nil
		}

	case isa.PSLLW, isa.PSLLD, isa.PSLLQ, isa.PSRLW, isa.PSRLD, isa.PSRLQ,
		isa.PSRAW, isa.PSRAD:
		if !in.A.IsReg() || !in.A.Reg.IsMMX() {
			return nil
		}
		d := in.A.Reg.MMXIndex()
		var shift func(mmx.Reg, uint) mmx.Reg
		switch in.Op {
		case isa.PSLLW:
			shift = mmx.PSllW
		case isa.PSLLD:
			shift = mmx.PSllD
		case isa.PSLLQ:
			shift = mmx.PSllQ
		case isa.PSRLW:
			shift = mmx.PSrlW
		case isa.PSRLD:
			shift = mmx.PSrlD
		case isa.PSRLQ:
			shift = mmx.PSrlQ
		case isa.PSRAW:
			shift = mmx.PSraW
		case isa.PSRAD:
			shift = mmx.PSraD
		}
		if in.B.IsImm() {
			n := uint64(in.B.Imm)
			if n > 64 {
				n = 64
			}
			un := uint(n)
			return func(c *CPU, _ *Event) error {
				c.mmxActive = true
				c.mm[d] = shift(c.mm[d], un)
				return nil
			}
		}
		src := compileReadMM(in.B)
		if src == nil {
			return nil
		}
		return func(c *CPU, ev *Event) error {
			c.mmxActive = true
			v, err := src(c, ev)
			if err != nil {
				return err
			}
			n := uint64(v)
			if n > 64 {
				n = 64
			}
			c.mm[d] = shift(c.mm[d], uint(n))
			return nil
		}
	}

	// Two-operand mm, mm/m64 forms with known value semantics.
	f, ok := mmxBinary[in.Op]
	if !ok || !in.A.IsReg() || !in.A.Reg.IsMMX() {
		return nil
	}
	d := in.A.Reg.MMXIndex()
	if in.B.IsReg() && in.B.Reg.IsMMX() {
		s := in.B.Reg.MMXIndex()
		return func(c *CPU, _ *Event) error {
			c.mmxActive = true
			c.mm[d] = f(c.mm[d], c.mm[s])
			return nil
		}
	}
	src := compileReadMM(in.B)
	if src == nil {
		return nil
	}
	return func(c *CPU, ev *Event) error {
		c.mmxActive = true
		v, err := src(c, ev)
		if err != nil {
			return err
		}
		c.mm[d] = f(c.mm[d], v)
		return nil
	}
}

// ---------------------------------------------------------------------------
// Floating-point compilation. Every FP handler replicates the generic
// path's MMX-mode guard (and its exact fault text) before touching state.

const fpWhileMMX = "floating-point instruction while MMX state active (missing emms)"

// fpDst returns the FP register index of a plain FP register destination,
// or -1.
func fpDst(o isa.Operand) int {
	if o.Kind == isa.KindReg && o.Reg.IsFP() {
		return o.Reg.FPIndex()
	}
	return -1
}

// compileReadFloat builds a readFloat equivalent (FP register or
// float32/float64 memory operand).
func compileReadFloat(o isa.Operand) func(*CPU, *Event) (float64, error) {
	switch o.Kind {
	case isa.KindReg:
		if !o.Reg.IsFP() {
			return nil
		}
		i := o.Reg.FPIndex()
		return func(c *CPU, _ *Event) (float64, error) { return c.fp[i], nil }
	case isa.KindMem:
		if o.Reg != isa.NoReg && !o.Reg.IsGPR() {
			return nil
		}
		if o.Index != isa.NoReg && !o.Index.IsGPR() {
			return nil
		}
		addr := compileAddr(o)
		switch o.Size {
		case isa.SizeD:
			return func(c *CPU, ev *Event) (float64, error) {
				a := addr(c)
				ev.MemPenalty += c.Hier.Access(a)
				raw, ok := c.Mem.LoadU32(a)
				if !ok {
					return 0, c.fault("float load out of range at %#x", a)
				}
				return float64(math.Float32frombits(raw)), nil
			}
		case isa.SizeQ:
			return func(c *CPU, ev *Event) (float64, error) {
				a := addr(c)
				ev.MemPenalty += c.Hier.Access(a)
				raw, ok := c.Mem.LoadU64(a)
				if !ok {
					return 0, c.fault("double load out of range at %#x", a)
				}
				return math.Float64frombits(raw), nil
			}
		}
		return nil
	}
	return nil
}

func compileFP(in *isa.Inst) execFn {
	switch in.Op {
	case isa.FLD:
		d := fpDst(in.A)
		src := compileReadFloat(in.B)
		if d < 0 || src == nil {
			return nil
		}
		return func(c *CPU, ev *Event) error {
			if c.mmxActive {
				return c.fault(fpWhileMMX)
			}
			v, err := src(c, ev)
			if err != nil {
				return err
			}
			c.fp[d] = v
			return nil
		}

	case isa.FLDC:
		d := fpDst(in.A)
		if d < 0 || !in.B.IsImm() {
			return nil
		}
		v := math.Float64frombits(uint64(in.B.Imm))
		return func(c *CPU, _ *Event) error {
			if c.mmxActive {
				return c.fault(fpWhileMMX)
			}
			c.fp[d] = v
			return nil
		}

	case isa.FADD, isa.FSUB, isa.FSUBR, isa.FMUL, isa.FDIV:
		d := fpDst(in.A)
		src := compileReadFloat(in.B)
		if d < 0 || src == nil {
			return nil
		}
		var f func(a, b float64) float64
		switch in.Op {
		case isa.FADD:
			f = func(a, b float64) float64 { return a + b }
		case isa.FSUB:
			f = func(a, b float64) float64 { return a - b }
		case isa.FSUBR:
			f = func(a, b float64) float64 { return b - a }
		case isa.FMUL:
			f = func(a, b float64) float64 { return a * b }
		case isa.FDIV:
			f = func(a, b float64) float64 { return a / b }
		}
		return func(c *CPU, ev *Event) error {
			if c.mmxActive {
				return c.fault(fpWhileMMX)
			}
			b, err := src(c, ev)
			if err != nil {
				return err
			}
			c.fp[d] = f(c.fp[d], b)
			return nil
		}

	case isa.FCHS, isa.FABS, isa.FSQRT, isa.FSIN, isa.FCOS:
		// Unary ops read and write the same FP register; the generic path
		// routes them through execFP's math calls, which stay out of the
		// closure so the compiled form is identical in behavior.
		return nil

	case isa.FCOM:
		sa := compileReadFloat(in.A)
		sb := compileReadFloat(in.B)
		if sa == nil || sb == nil || !in.A.IsReg() {
			return nil
		}
		return func(c *CPU, ev *Event) error {
			if c.mmxActive {
				return c.fault(fpWhileMMX)
			}
			a, err := sa(c, ev)
			if err != nil {
				return err
			}
			b, err := sb(c, ev)
			if err != nil {
				return err
			}
			c.zf = a == b
			c.cf = a < b
			c.sf = false
			c.of = false
			return nil
		}
	}
	return nil
}
