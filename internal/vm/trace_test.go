package vm_test

// Trace-dispatch behavior tests: superblock formation and residency, exact
// instruction-budget accounting, mid-superblock cancellation with correct
// architectural state, and deoptimization/reformation when the recorded
// path goes cold. The byte-identity of trace-mode *reports* is covered by
// the four-way differentials (equivalence_test.go here, threeway_test.go in
// pentium); these tests pin the dispatcher's control surface.

import (
	"bytes"
	"errors"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/vm"
)

// traceLoopProg is a nested counted loop (inner trip 64, outer 256) whose
// body is plain ALU/memory work — the shape the trace dispatcher fuses into
// a single-loop superblock.
func traceLoopProg() *asm.Program {
	b := asm.NewBuilder("traceloop")
	b.Dwords("data", make([]int32, 64))
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(256))
	b.Label("outer")
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(64))
	b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("data", 0))
	b.Label("loop")
	b.I(isa.MOV, asm.R(isa.EBX), asm.MemD(isa.ESI, 0))
	b.I(isa.ADD, asm.R(isa.EAX), asm.R(isa.EBX))
	b.I(isa.ADD, asm.MemD(isa.ESI, 0), asm.Imm(3))
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(4))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(1))
	b.J(isa.JNE, "loop")
	b.I(isa.SUB, asm.R(isa.EDX), asm.Imm(1))
	b.J(isa.JNE, "outer")
	b.I(isa.HALT)
	return b.MustLink()
}

// TestTraceFormationAndResidency checks that the dispatcher actually forms
// a superblock on a hot loop and retires the bulk of the run inside it.
func TestTraceFormationAndResidency(t *testing.T) {
	c := vm.NewWithCode(vm.Compile(traceLoopProg()))
	c.Traces = true
	if err := c.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	st := c.TraceStats()
	if st.Formed == 0 {
		t.Fatalf("no traces formed: %+v", st)
	}
	if st.Iters == 0 {
		t.Fatalf("traces formed but never iterated: %+v", st)
	}
	if resident := float64(st.TraceInstrs) / float64(c.Executed()); resident < 0.5 {
		t.Errorf("trace residency %.1f%% (stats %+v), want > 50%%", 100*resident, st)
	}
}

// TestTraceBudgetExact checks that an instruction budget expiring mid-loop
// faults on exactly the same instruction, with the same message and
// architectural state, as the generic interpreter: the dispatcher must hand
// back to single-stepping before a superblock iteration would overrun.
func TestTraceBudgetExact(t *testing.T) {
	// 10_007 lands mid-iteration of the inner loop (8 instrs per trip).
	const budget = 10_007

	gen := vm.New(traceLoopProg())
	gen.Generic = true
	genErr := gen.Run(budget)

	trc := vm.NewWithCode(vm.Compile(traceLoopProg()))
	trc.Traces = true
	trcErr := trc.Run(budget)

	if genErr == nil || trcErr == nil {
		t.Fatalf("both runs must exhaust the budget: generic %v, trace %v", genErr, trcErr)
	}
	if genErr.Error() != trcErr.Error() {
		t.Errorf("budget fault differs:\n generic: %v\n trace:   %v", genErr, trcErr)
	}
	if gen.Executed() != trc.Executed() {
		t.Errorf("executed at fault: generic %d, trace %d", gen.Executed(), trc.Executed())
	}
	if st := trc.TraceStats(); st.Iters == 0 {
		t.Errorf("budget run never entered a trace: %+v", st)
	}
	compareMachineState(t, gen, trc)
}

// TestTracePollCancellation cancels a run from the poll hook while the CPU
// is executing inside a superblock (registers live in interpreter locals)
// and checks the abort spills a consistent architectural state: re-running
// the program on the generic interpreter up to the same retired count must
// reproduce the registers and memory image exactly.
func TestTracePollCancellation(t *testing.T) {
	errCancel := errors.New("cancelled")

	trc := vm.NewWithCode(vm.Compile(traceLoopProg()))
	trc.Traces = true
	trc.PollEvery = 64 // poll at superblock iteration boundaries
	trc.Poll = func() error {
		if trc.Executed() >= 5000 {
			return errCancel
		}
		return nil
	}
	err := trc.Run(1 << 24)
	if !errors.Is(err, errCancel) {
		t.Fatalf("trace run: got %v, want wrapped errCancel", err)
	}
	if st := trc.TraceStats(); st.Iters == 0 {
		t.Fatalf("cancelled run never entered a trace: %+v", st)
	}
	stopped := trc.Executed()
	if stopped < 5000 {
		t.Fatalf("aborted after %d instructions, before the cancellation point", stopped)
	}

	gen := vm.New(traceLoopProg())
	gen.Generic = true
	gen.PollEvery = 1
	gen.Poll = func() error {
		if gen.Executed() >= stopped {
			return errCancel
		}
		return nil
	}
	if err := gen.Run(1 << 24); !errors.Is(err, errCancel) {
		t.Fatalf("generic run: got %v, want wrapped errCancel", err)
	}
	if gen.Executed() != stopped {
		t.Fatalf("generic stopped at %d, trace at %d", gen.Executed(), stopped)
	}
	compareMachineState(t, gen, trc)
}

// TestTraceDeoptReformation drives a loop through a phase change: a
// flag-controlled branch goes one way long enough for a superblock to form,
// then permanently flips, turning every trace entry into a side exit. The
// dispatcher must deoptimize the cold trace and form a fresh one on the new
// path, and the final machine state must still match the generic
// interpreter.
func TestTraceDeoptReformation(t *testing.T) {
	build := func() *asm.Program {
		b := asm.NewBuilder("deopt")
		b.Dwords("data", make([]int32, 64))
		b.Dwords("flag", []int32{0})
		b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(300))
		b.Label("outer")
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(8))
		b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("data", 0))
		b.Label("loop")
		b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "flag", 0))
		b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(0))
		b.J(isa.JNE, "alt")
		b.I(isa.ADD, asm.MemD(isa.ESI, 0), asm.Imm(1))
		b.J(isa.JMP, "join")
		b.Label("alt")
		b.I(isa.ADD, asm.MemD(isa.ESI, 0), asm.Imm(2))
		b.Label("join")
		b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(4))
		b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(1))
		b.J(isa.JNE, "loop")
		b.I(isa.SUB, asm.R(isa.EDX), asm.Imm(1))
		// Flip the flag once, 20 passes in (EDX counts down from 300).
		b.I(isa.CMP, asm.R(isa.EDX), asm.Imm(280))
		b.J(isa.JNE, "noflip")
		b.I(isa.MOV, asm.Sym(isa.SizeD, "flag", 0), asm.Imm(1))
		b.Label("noflip")
		b.I(isa.CMP, asm.R(isa.EDX), asm.Imm(0))
		b.J(isa.JNE, "outer")
		b.I(isa.HALT)
		return b.MustLink()
	}

	trc := vm.NewWithCode(vm.Compile(build()))
	trc.Traces = true
	trc.TraceThreshold = 4
	if err := trc.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	st := trc.TraceStats()
	if st.Formed < 2 {
		t.Errorf("phase change should deoptimize and reform: stats %+v", st)
	}
	if st.Exits == 0 {
		t.Errorf("phase change should side-exit: stats %+v", st)
	}

	gen := vm.New(build())
	gen.Generic = true
	if err := gen.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	if gen.Executed() != trc.Executed() {
		t.Errorf("executed: generic %d, trace %d", gen.Executed(), trc.Executed())
	}
	compareMachineState(t, gen, trc)
}

// traceTreeProg is a nested loop whose inner body takes a rare arm on every
// eighth iteration — the biased-branch shape that makes a superblock's
// guard fail persistently but below the deopt threshold, so the dispatcher
// grows the alternate path as a trace-tree child instead of retiring the
// trace.
func traceTreeProg(outer int) *asm.Program {
	b := asm.NewBuilder("tracetree")
	b.Dwords("data", make([]int32, 64))
	b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(int64(outer)))
	b.Label("outer")
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(64))
	b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("data", 0))
	b.Label("loop")
	b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.ECX))
	b.I(isa.AND, asm.R(isa.EAX), asm.Imm(7))
	b.J(isa.JNE, "common")
	b.I(isa.ADD, asm.MemD(isa.ESI, 0), asm.Imm(5)) // rare arm, 1 in 8
	b.J(isa.JMP, "join")
	b.Label("common")
	b.I(isa.ADD, asm.MemD(isa.ESI, 0), asm.Imm(1))
	b.Label("join")
	b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(4))
	b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(1))
	b.J(isa.JNE, "loop")
	b.I(isa.SUB, asm.R(isa.EDX), asm.Imm(1))
	b.J(isa.JNE, "outer")
	b.I(isa.HALT)
	return b.MustLink()
}

// TestTraceTreeGrowth checks that a biased guard grows a child path rather
// than deopting, that iterations then complete through the tree, and that
// the final machine state still matches the generic interpreter.
func TestTraceTreeGrowth(t *testing.T) {
	trc := vm.NewWithCode(vm.Compile(traceTreeProg(256)))
	trc.Traces = true
	trc.TraceThreshold = 4
	if err := trc.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	st := trc.TraceStats()
	if st.TreeNodes == 0 {
		t.Fatalf("biased guard grew no tree: %+v", st)
	}
	if st.TreeIters == 0 {
		t.Fatalf("tree grew but no iteration completed via a child path: %+v", st)
	}

	gen := vm.New(traceTreeProg(256))
	gen.Generic = true
	if err := gen.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	if gen.Executed() != trc.Executed() {
		t.Errorf("executed: generic %d, trace %d", gen.Executed(), trc.Executed())
	}
	compareMachineState(t, gen, trc)
}

// TestTraceTreeBudgetExact exhausts the instruction budget while the hot
// loop is running inside a grown trace tree: the fault must land on exactly
// the same instruction, with the same message and architectural state, as
// the generic interpreter — forks must not enter a child path whose whole
// iteration would overrun.
func TestTraceTreeBudgetExact(t *testing.T) {
	// Deep inside tree execution (the tree grows within the first ~2k
	// instructions at threshold 4), landing mid-iteration.
	const budget = 100_003

	gen := vm.New(traceTreeProg(256))
	gen.Generic = true
	genErr := gen.Run(budget)

	trc := vm.NewWithCode(vm.Compile(traceTreeProg(256)))
	trc.Traces = true
	trc.TraceThreshold = 4
	trcErr := trc.Run(budget)

	if genErr == nil || trcErr == nil {
		t.Fatalf("both runs must exhaust the budget: generic %v, trace %v", genErr, trcErr)
	}
	if genErr.Error() != trcErr.Error() {
		t.Errorf("budget fault differs:\n generic: %v\n trace:   %v", genErr, trcErr)
	}
	if gen.Executed() != trc.Executed() {
		t.Errorf("executed at fault: generic %d, trace %d", gen.Executed(), trc.Executed())
	}
	if st := trc.TraceStats(); st.TreeIters == 0 {
		t.Errorf("budget run never completed a child-path iteration: %+v", st)
	}
	compareMachineState(t, gen, trc)
}

// TestTraceTreePollCancellation cancels a run while iterations are
// completing through trace-tree child paths (registers live in interpreter
// locals across forks) and checks the abort spills a consistent
// architectural state: the generic interpreter stopped at the same retired
// count must reproduce registers and memory exactly.
func TestTraceTreePollCancellation(t *testing.T) {
	errCancel := errors.New("cancelled")

	trc := vm.NewWithCode(vm.Compile(traceTreeProg(256)))
	trc.Traces = true
	trc.TraceThreshold = 4
	trc.PollEvery = 64
	trc.Poll = func() error {
		if trc.Executed() >= 50_000 {
			return errCancel
		}
		return nil
	}
	if err := trc.Run(1 << 24); !errors.Is(err, errCancel) {
		t.Fatalf("trace run: got %v, want wrapped errCancel", err)
	}
	if st := trc.TraceStats(); st.TreeIters == 0 {
		t.Fatalf("cancelled run never completed a child-path iteration: %+v", st)
	}
	stopped := trc.Executed()

	gen := vm.New(traceTreeProg(256))
	gen.Generic = true
	gen.PollEvery = 1
	gen.Poll = func() error {
		if gen.Executed() >= stopped {
			return errCancel
		}
		return nil
	}
	if err := gen.Run(1 << 24); !errors.Is(err, errCancel) {
		t.Fatalf("generic run: got %v, want wrapped errCancel", err)
	}
	if gen.Executed() != stopped {
		t.Fatalf("generic stopped at %d, trace at %d", gen.Executed(), stopped)
	}
	compareMachineState(t, gen, trc)
}

// TestTraceTreeGuardFlapping drives a guard that flips direction every
// outer pass: whole passes go one way, then the other, so neither arm ever
// goes cold. The side-exit governor must not thrash deopt/reform cycles —
// the tree absorbs the alternate arm — and the final state must match the
// generic interpreter.
func TestTraceTreeGuardFlapping(t *testing.T) {
	build := func() *asm.Program {
		b := asm.NewBuilder("flap")
		b.Dwords("data", make([]int32, 64))
		b.Dwords("flag", []int32{0})
		b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(200))
		b.Label("outer")
		b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "flag", 0))
		b.I(isa.XOR, asm.R(isa.EAX), asm.Imm(1)) // flip every pass
		b.I(isa.MOV, asm.Sym(isa.SizeD, "flag", 0), asm.R(isa.EAX))
		b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(32))
		b.I(isa.MOV, asm.R(isa.ESI), asm.ImmSym("data", 0))
		b.Label("loop")
		b.I(isa.MOV, asm.R(isa.EAX), asm.Sym(isa.SizeD, "flag", 0))
		b.I(isa.CMP, asm.R(isa.EAX), asm.Imm(0))
		b.J(isa.JNE, "alt")
		b.I(isa.ADD, asm.MemD(isa.ESI, 0), asm.Imm(1))
		b.J(isa.JMP, "join")
		b.Label("alt")
		b.I(isa.ADD, asm.MemD(isa.ESI, 0), asm.Imm(2))
		b.Label("join")
		b.I(isa.ADD, asm.R(isa.ESI), asm.Imm(4))
		b.I(isa.SUB, asm.R(isa.ECX), asm.Imm(1))
		b.J(isa.JNE, "loop")
		b.I(isa.SUB, asm.R(isa.EDX), asm.Imm(1))
		b.J(isa.JNE, "outer")
		b.I(isa.HALT)
		return b.MustLink()
	}

	trc := vm.NewWithCode(vm.Compile(build()))
	trc.Traces = true
	trc.TraceThreshold = 4
	if err := trc.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	st := trc.TraceStats()
	if st.TreeNodes == 0 {
		t.Errorf("flapping guard should grow its alternate arm: %+v", st)
	}
	if st.Exits == 0 {
		t.Errorf("flapping guard should side-exit while growing: %+v", st)
	}

	gen := vm.New(build())
	gen.Generic = true
	if err := gen.Run(1 << 24); err != nil {
		t.Fatal(err)
	}
	if gen.Executed() != trc.Executed() {
		t.Errorf("executed: generic %d, trace %d", gen.Executed(), trc.Executed())
	}
	compareMachineState(t, gen, trc)
}

// compareMachineState fails the test wherever two CPUs' architectural
// states (GPRs, MM registers, memory image) disagree.
func compareMachineState(t *testing.T, a, b *vm.CPU) {
	t.Helper()
	for i := 0; i < 8; i++ {
		if ag, bg := a.GPR(isa.EAX+isa.Reg(i)), b.GPR(isa.EAX+isa.Reg(i)); ag != bg {
			t.Errorf("GPR %d differs: %#x vs %#x", i, ag, bg)
		}
		if am, bm := a.MM(isa.MM0+isa.Reg(i)), b.MM(isa.MM0+isa.Reg(i)); am != bm {
			t.Errorf("MM%d differs: %#x vs %#x", i, uint64(am), uint64(bm))
		}
	}
	if !bytes.Equal(a.Mem.Bytes(), b.Mem.Bytes()) {
		am, bm := a.Mem.Bytes(), b.Mem.Bytes()
		for i := range am {
			if am[i] != bm[i] {
				t.Errorf("memory images differ first at %#x: %#x vs %#x", i, am[i], bm[i])
				break
			}
		}
	}
}
