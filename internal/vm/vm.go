// Package vm executes linked Programs: an in-order fetch/decode/execute
// interpreter over the simulated ISA with 8 general-purpose registers, the
// MMX register file aliased onto the floating-point registers, IA-32 style
// flags, and a call stack in simulated memory.
//
// The VM is purely architectural: it computes results and emits one Event
// per retired instruction. Timing (pipeline pairing, latencies, branch and
// cache penalties) is the concern of the observers in internal/pentium and
// internal/profile, mirroring how VTune replayed an instruction stream
// against a Pentium model.
package vm

import (
	"errors"
	"fmt"
	"math"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mem"
	"mmxdsp/internal/mmx"
)

// ErrBudget marks a run halted by its instruction budget rather than by
// HALT or a genuine fault. Budget exhaustion is exact — every dispatch
// tier falls back to single stepping when the remaining budget is smaller
// than its fused unit — so a budget-terminated machine state is
// deterministic and callers may report it as a partial result
// (errors.Is(err, ErrBudget)).
var ErrBudget = errors.New("instruction budget exhausted")

// DefaultPollInterval is the retirement-count granularity at which Run
// invokes CPU.Poll when a poll hook is installed. At simulated throughputs
// of a few million instructions per second even the slowest interpreter
// revisits the hook within single-digit milliseconds, so cancellation
// latency is bounded well below human-visible delays while the hot loops
// pay only one integer compare per iteration.
const DefaultPollInterval = 1 << 15

// Event describes one retired instruction.
type Event struct {
	PC   int
	Inst *isa.Inst
	// Measured reports whether the instruction retired inside a
	// profon/profoff region.
	Measured bool
	// Taken reports whether a branch/jump/call/ret transferred control.
	Taken bool
	// Target is the next PC after the instruction.
	Target int
	// MemPenalty is the extra cycles charged by the cache model for this
	// instruction's data references.
	MemPenalty int
}

// Observer receives retired-instruction events.
type Observer interface {
	Retire(ev Event)
}

// CPU is a machine instance executing one Program.
type CPU struct {
	Prog *asm.Program
	Mem  *mem.Memory

	// code is the predecoded handler array (see decode.go), compiled
	// lazily on the first Run and shared by CPUs built with NewWithCode.
	code *Code
	// Generic forces the unspecialized decode-per-step interpreter. It
	// exists for differential testing: the predecoded and generic paths
	// must produce identical registers, memory, events and faults.
	Generic bool
	// NoBlocks disables the block dispatcher (see block.go), forcing the
	// per-event predecoded loop even for observers that support block
	// retirement. Differential tests pin all three paths against each
	// other.
	NoBlocks bool
	// Traces enables the trace dispatcher (see trace.go): block dispatch
	// plus runtime hot-chain detection, superblock fusion across taken
	// branches and register caching inside the fused bodies. Requires an
	// observer implementing TraceObserver (or none).
	Traces bool
	// TraceThreshold overrides the chain-head hotness threshold; 0 selects
	// the default.
	TraceThreshold int

	// ts is the per-run trace state (heat counters, recorder, superblock
	// table), built lazily on the first trace-dispatched Run.
	ts *traceState

	gpr [8]uint32
	mm  [8]mmx.Reg
	fp  [8]float64

	zf, sf, cf, of bool

	pc        int
	halted    bool
	measuring bool
	mmxActive bool

	// Hier is the data-cache hierarchy; nil models perfect memory.
	Hier *mem.Hierarchy
	// Obs receives retirement events; nil disables observation.
	Obs Observer

	// Poll, when non-nil, is invoked by Run at least once every PollEvery
	// retired instructions (and once on entry). A non-nil return aborts
	// the run with that error wrapped in program context; errors.Is still
	// sees the cause, so a hook returning ctx.Err() gives callers
	// mid-run cancellation with bounded latency.
	Poll func() error
	// PollEvery overrides the poll granularity; 0 selects
	// DefaultPollInterval.
	PollEvery int64

	executed int64
}

// New builds a CPU for the program with its memory image loaded and the
// stack pointer initialized. The program is predecoded on the first Run;
// use NewWithCode to share one compiled Code across CPUs.
func New(p *asm.Program) *CPU {
	c := &CPU{
		Prog: p,
		Mem:  mem.New(p.MemSize),
		pc:   p.Entry,
	}
	c.Mem.WriteBytes(asm.DataBase, p.Data)
	c.gpr[isa.ESP.GPRIndex()] = p.StackTop()
	return c
}

// NewWithCode builds a CPU that reuses an already-compiled program, so
// repeated runs of the same program pay the predecode cost once.
func NewWithCode(code *Code) *CPU {
	c := New(code.prog)
	c.code = code
	return c
}

// GPR returns the value of a general-purpose register.
func (c *CPU) GPR(r isa.Reg) uint32 { return c.gpr[r.GPRIndex()] }

// SetGPR sets a general-purpose register.
func (c *CPU) SetGPR(r isa.Reg, v uint32) { c.gpr[r.GPRIndex()] = v }

// MM returns the value of an MMX register.
func (c *CPU) MM(r isa.Reg) mmx.Reg { return c.mm[r.MMXIndex()] }

// FPReg returns the value of a floating-point register.
func (c *CPU) FPReg(r isa.Reg) float64 { return c.fp[r.FPIndex()] }

// Executed returns the number of retired instructions (including pseudo).
func (c *CPU) Executed() int64 { return c.executed }

// Halted reports whether the program executed HALT.
func (c *CPU) Halted() bool { return c.halted }

// budgetFault produces the budget-exhaustion error, formatted like a
// fault but wrapping ErrBudget so callers can classify it. All three
// dispatch loops raise it through here, keeping the text identical across
// modes (the dispatch-equivalence tests compare error strings).
func (c *CPU) budgetFault(maxInstrs int64) error {
	in := "?"
	if c.pc >= 0 && c.pc < len(c.Prog.Insts) {
		in = c.Prog.Insts[c.pc].String()
	}
	return fmt.Errorf("vm(%s) pc=%d [%s]: budget of %d instructions: %w",
		c.Prog.Name, c.pc, in, maxInstrs, ErrBudget)
}

// fault produces an execution error with context.
func (c *CPU) fault(format string, args ...any) error {
	in := "?"
	if c.pc >= 0 && c.pc < len(c.Prog.Insts) {
		in = c.Prog.Insts[c.pc].String()
	}
	return fmt.Errorf("vm(%s) pc=%d [%s]: %s", c.Prog.Name, c.pc, in,
		fmt.Sprintf(format, args...))
}

// pollInterval returns the configured poll granularity.
func (c *CPU) pollInterval() int64 {
	if c.PollEvery > 0 {
		return c.PollEvery
	}
	return DefaultPollInterval
}

// pollStart returns the first retirement count at which the inner loop
// should consult Poll: immediately when a hook is installed (so an
// already-cancelled run never executes an instruction), never otherwise.
func (c *CPU) pollStart() int64 {
	if c.Poll == nil {
		return math.MaxInt64
	}
	return c.executed
}

// abort wraps a poll error with execution context, preserving the cause
// for errors.Is/errors.As (e.g. context.Canceled).
func (c *CPU) abort(err error) error {
	return fmt.Errorf("vm(%s) pc=%d: run aborted after %d instructions: %w",
		c.Prog.Name, c.pc, c.executed, err)
}

// Run executes until HALT or until maxInstrs instructions have retired,
// which guards against runaway programs. The fastest applicable inner loop
// is chosen automatically: block dispatch (block.go) when the observer
// implements BlockObserver or is absent, otherwise the per-event predecoded
// loop "indexed fetch -> call handler -> retire". Set NoBlocks to pin the
// per-event loop, or Generic for the unspecialized decode-per-step
// reference interpreter.
func (c *CPU) Run(maxInstrs int64) error {
	if c.Generic {
		return c.runGeneric(maxInstrs)
	}
	if c.code == nil {
		c.code = Compile(c.Prog)
	}
	if !c.NoBlocks {
		if c.Traces {
			if tobs, ok := c.Obs.(TraceObserver); ok {
				return c.runTrace(maxInstrs, tobs)
			}
			if c.Obs == nil {
				return c.runTrace(maxInstrs, nil)
			}
		}
		if bobs, ok := c.Obs.(BlockObserver); ok {
			return c.runBlocks(maxInstrs, bobs)
		}
		if c.Obs == nil {
			return c.runBlocks(maxInstrs, nil)
		}
	}
	ops := c.code.ops
	// One Event is reused across iterations: the handler call takes its
	// address through a function value, which would otherwise force a heap
	// allocation per retired instruction.
	var ev Event
	pollAt := c.pollStart()
	for !c.halted {
		if c.executed >= pollAt {
			if err := c.Poll(); err != nil {
				return c.abort(err)
			}
			pollAt = c.executed + c.pollInterval()
		}
		if c.executed >= maxInstrs {
			return c.budgetFault(maxInstrs)
		}
		pc := c.pc
		if pc < 0 || pc >= len(ops) {
			return c.fault("control transferred outside program (pc=%d)", pc)
		}
		d := &ops[pc]
		c.executed++
		if d.kind != dNormal {
			// Pseudo instructions manage the measured region and emit no
			// events, matching the generic step.
			switch d.kind {
			case dProfOn:
				c.measuring = true
			case dProfOff:
				c.measuring = false
			}
			c.pc++
			continue
		}
		ev = Event{PC: pc, Inst: d.inst, Measured: c.measuring}
		if err := d.exec(c, &ev); err != nil {
			return err
		}
		if !ev.Taken {
			c.pc++
		}
		ev.Target = c.pc
		if c.Obs != nil {
			c.Obs.Retire(ev)
		}
	}
	return nil
}

// runGeneric is the original decode-per-step loop, kept as the reference
// semantics for the predecoded path.
func (c *CPU) runGeneric(maxInstrs int64) error {
	pollAt := c.pollStart()
	for !c.halted {
		if c.executed >= pollAt {
			if err := c.Poll(); err != nil {
				return c.abort(err)
			}
			pollAt = c.executed + c.pollInterval()
		}
		if c.executed >= maxInstrs {
			return c.budgetFault(maxInstrs)
		}
		if c.pc < 0 || c.pc >= len(c.Prog.Insts) {
			return c.fault("control transferred outside program (pc=%d)", c.pc)
		}
		if err := c.step(); err != nil {
			return err
		}
	}
	return nil
}

func (c *CPU) step() error {
	pc := c.pc
	in := &c.Prog.Insts[pc]
	c.executed++

	// Pseudo instructions manage the measured region and are invisible to
	// the observers, matching how VTune's start/stop markers work.
	switch in.Op {
	case isa.NOP:
		c.pc++
		return nil
	case isa.PROFON:
		c.measuring = true
		c.pc++
		return nil
	case isa.PROFOFF:
		c.measuring = false
		c.pc++
		return nil
	}

	ev := Event{PC: pc, Inst: in, Measured: c.measuring}
	var err error
	switch {
	case in.Op.IsMMX():
		err = c.execMMX(in, &ev)
	case in.Op.IsFP():
		err = c.execFP(in, &ev)
	default:
		err = c.execInt(in, &ev)
	}
	if err != nil {
		return err
	}
	if !ev.Taken {
		c.pc++
	}
	ev.Target = c.pc
	if c.Obs != nil {
		c.Obs.Retire(ev)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Addressing and operand access

func (c *CPU) effAddr(o isa.Operand) uint32 {
	a := uint32(o.Disp)
	if o.Reg != isa.NoReg {
		a += c.gpr[o.Reg.GPRIndex()]
	}
	if o.Index != isa.NoReg {
		s := uint32(o.Scale)
		if s == 0 {
			s = 1
		}
		a += c.gpr[o.Index.GPRIndex()] * s
	}
	return a
}

func (c *CPU) chargeAccess(addr uint32, ev *Event) {
	ev.MemPenalty += c.Hier.Access(addr)
}

// loadSized reads a zero-extended value of the operand's size.
func (c *CPU) loadSized(o isa.Operand, ev *Event) (uint32, error) {
	addr := c.effAddr(o)
	c.chargeAccess(addr, ev)
	switch o.Size {
	case isa.SizeB:
		v, ok := c.Mem.LoadU8(addr)
		if !ok {
			return 0, c.fault("load byte out of range at %#x", addr)
		}
		return uint32(v), nil
	case isa.SizeW:
		v, ok := c.Mem.LoadU16(addr)
		if !ok {
			return 0, c.fault("load word out of range at %#x", addr)
		}
		return uint32(v), nil
	case isa.SizeD, isa.SizeNone:
		v, ok := c.Mem.LoadU32(addr)
		if !ok {
			return 0, c.fault("load dword out of range at %#x", addr)
		}
		return v, nil
	}
	return 0, c.fault("bad load size %v", o.Size)
}

func (c *CPU) storeSized(o isa.Operand, v uint32, ev *Event) error {
	addr := c.effAddr(o)
	c.chargeAccess(addr, ev)
	var ok bool
	switch o.Size {
	case isa.SizeB:
		ok = c.Mem.StoreU8(addr, uint8(v))
	case isa.SizeW:
		ok = c.Mem.StoreU16(addr, uint16(v))
	case isa.SizeD, isa.SizeNone:
		ok = c.Mem.StoreU32(addr, v)
	default:
		return c.fault("bad store size %v", o.Size)
	}
	if !ok {
		return c.fault("store out of range at %#x", addr)
	}
	return nil
}

// readInt reads an integer operand value (register, immediate or memory).
func (c *CPU) readInt(o isa.Operand, ev *Event) (uint32, error) {
	switch o.Kind {
	case isa.KindReg:
		if !o.Reg.IsGPR() {
			return 0, c.fault("integer read of non-GPR %s", o.Reg)
		}
		return c.gpr[o.Reg.GPRIndex()], nil
	case isa.KindImm:
		return uint32(o.Imm), nil
	case isa.KindMem:
		return c.loadSized(o, ev)
	}
	return 0, c.fault("missing operand")
}

// writeInt writes an integer result to a register or memory destination.
func (c *CPU) writeInt(o isa.Operand, v uint32, ev *Event) error {
	switch o.Kind {
	case isa.KindReg:
		if !o.Reg.IsGPR() {
			return c.fault("integer write to non-GPR %s", o.Reg)
		}
		c.gpr[o.Reg.GPRIndex()] = v
		return nil
	case isa.KindMem:
		return c.storeSized(o, v, ev)
	}
	return c.fault("bad destination operand")
}

// ---------------------------------------------------------------------------
// Flags

func (c *CPU) setZS(v uint32) {
	c.zf = v == 0
	c.sf = int32(v) < 0
}

func (c *CPU) setAdd(a, b, r uint32) {
	c.setZS(r)
	c.cf = r < a
	c.of = (a^r)&(b^r)&0x80000000 != 0
}

func (c *CPU) setSub(a, b, r uint32) {
	c.setZS(r)
	c.cf = a < b
	c.of = (a^b)&(a^r)&0x80000000 != 0
}

func (c *CPU) setLogic(r uint32) {
	c.setZS(r)
	c.cf = false
	c.of = false
}

func (c *CPU) cond(op isa.Op) bool {
	switch op {
	case isa.JE:
		return c.zf
	case isa.JNE:
		return !c.zf
	case isa.JL:
		return c.sf != c.of
	case isa.JLE:
		return c.zf || c.sf != c.of
	case isa.JG:
		return !c.zf && c.sf == c.of
	case isa.JGE:
		return c.sf == c.of
	case isa.JB:
		return c.cf
	case isa.JBE:
		return c.cf || c.zf
	case isa.JA:
		return !c.cf && !c.zf
	case isa.JAE:
		return !c.cf
	case isa.JS:
		return c.sf
	case isa.JNS:
		return !c.sf
	}
	return false
}

// ---------------------------------------------------------------------------
// Stack

func (c *CPU) push32(v uint32, ev *Event) error {
	sp := c.gpr[isa.ESP.GPRIndex()] - 4
	c.gpr[isa.ESP.GPRIndex()] = sp
	c.chargeAccess(sp, ev)
	if !c.Mem.StoreU32(sp, v) {
		return c.fault("stack overflow at %#x", sp)
	}
	return nil
}

func (c *CPU) pop32(ev *Event) (uint32, error) {
	sp := c.gpr[isa.ESP.GPRIndex()]
	c.chargeAccess(sp, ev)
	v, ok := c.Mem.LoadU32(sp)
	if !ok {
		return 0, c.fault("stack underflow at %#x", sp)
	}
	c.gpr[isa.ESP.GPRIndex()] = sp + 4
	return v, nil
}
