package vm

import (
	"strings"
	"testing"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
)

// expectFault builds a one-proc program, runs it, and asserts the error
// message contains want.
func expectFault(t *testing.T, want string, build func(b *asm.Builder)) {
	t.Helper()
	b := asm.NewBuilder("fault")
	build(b)
	b.I(isa.HALT)
	p, err := b.Link()
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	c := New(p)
	err = c.Run(1000)
	if err == nil {
		t.Fatalf("expected fault containing %q, got success", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("fault = %v, want substring %q", err, want)
	}
}

func TestFaultIntegerReadOfFPRegister(t *testing.T) {
	expectFault(t, "non-GPR", func(b *asm.Builder) {
		b.I(isa.MOV, asm.R(isa.EAX), asm.R(isa.FP0))
	})
}

func TestFaultFPRegisterExpected(t *testing.T) {
	expectFault(t, "expected FP register", func(b *asm.Builder) {
		b.I(isa.FADD, asm.R(isa.EAX), asm.R(isa.FP0))
	})
}

func TestFaultMMRegisterExpected(t *testing.T) {
	expectFault(t, "expected mm register", func(b *asm.Builder) {
		b.I(isa.PADDW, asm.R(isa.EAX), asm.R(isa.MM0))
	})
}

func TestFaultFildBadSize(t *testing.T) {
	expectFault(t, "word or dword", func(b *asm.Builder) {
		b.Dwords("v", []int32{1, 2})
		b.I(isa.FILD, asm.R(isa.FP0), asm.Sym(isa.SizeQ, "v", 0))
	})
}

func TestFaultFstBadSize(t *testing.T) {
	expectFault(t, "dword or qword", func(b *asm.Builder) {
		b.Reserve("v", 8)
		b.I(isa.FST, asm.Sym(isa.SizeW, "v", 0), asm.R(isa.FP0))
	})
}

func TestFaultLeaNeedsMemory(t *testing.T) {
	expectFault(t, "lea needs a memory operand", func(b *asm.Builder) {
		b.I(isa.LEA, asm.R(isa.EAX), asm.R(isa.EBX))
	})
}

func TestFaultXchgRegistersOnly(t *testing.T) {
	expectFault(t, "register operands only", func(b *asm.Builder) {
		b.Reserve("v", 8)
		b.I(isa.XCHG, asm.R(isa.EAX), asm.Sym(isa.SizeD, "v", 0))
	})
}

func TestFaultIdivOverflow(t *testing.T) {
	// 2^40 / 2 overflows a 32-bit quotient.
	expectFault(t, "idiv overflow", func(b *asm.Builder) {
		b.I(isa.MOV, asm.R(isa.EDX), asm.Imm(0x100))
		b.I(isa.MOV, asm.R(isa.EAX), asm.Imm(0))
		b.I(isa.MOV, asm.R(isa.EBX), asm.Imm(2))
		b.I(isa.IDIV, asm.R(isa.EBX))
	})
}

func TestFaultControlOutsideProgram(t *testing.T) {
	// ret with a corrupted return address on the stack.
	expectFault(t, "outside program", func(b *asm.Builder) {
		b.I(isa.PUSH, asm.Imm(999999))
		b.I(isa.RET)
	})
}

func TestFaultStackOverflow(t *testing.T) {
	b := asm.NewBuilder("fault")
	b.Proc("main")
	b.Label("spin")
	b.I(isa.PUSH, asm.R(isa.EAX))
	b.J(isa.JMP, "spin")
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	// Pushing forever must fault (address wraps below the image) rather
	// than loop silently; the exact message depends on where it lands.
	if err := c.Run(1 << 26); err == nil {
		t.Fatal("runaway push loop must fault")
	}
}

func TestFaultMovqBadDestination(t *testing.T) {
	expectFault(t, "movq destination", func(b *asm.Builder) {
		b.I(isa.MOVQ, asm.R(isa.EAX), asm.R(isa.MM0))
	})
}

func TestFaultFldcNeedsImmediate(t *testing.T) {
	expectFault(t, "fldc needs an immediate", func(b *asm.Builder) {
		b.I(isa.FLDC, asm.R(isa.FP0), asm.R(isa.FP1))
	})
}

func TestFaultMessagesCarryContext(t *testing.T) {
	b := asm.NewBuilder("ctxprog")
	b.I(isa.MOV, asm.R(isa.ESI), asm.Imm(-4))
	b.I(isa.MOV, asm.R(isa.EAX), asm.MemD(isa.ESI, 0))
	b.I(isa.HALT)
	c := New(b.MustLink())
	err := c.Run(100)
	if err == nil {
		t.Fatal("expected fault")
	}
	msg := err.Error()
	for _, want := range []string{"ctxprog", "pc=1", "mov eax"} {
		if !strings.Contains(msg, want) {
			t.Errorf("fault message %q missing %q", msg, want)
		}
	}
}
