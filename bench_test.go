// Package mmxdsp's benchmark harness: one testing.B benchmark per table
// and figure of the paper, plus the ablation benches DESIGN.md calls out.
// Custom metrics carry the reproduced numbers (speedups, ratios), so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation and reports it through the standard
// benchmark output.
package mmxdsp

import (
	"fmt"
	"testing"

	"mmxdsp/internal/apps"
	"mmxdsp/internal/core"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/suite"
)

// runSet runs the named programs once and returns the results.
func runSet(b *testing.B, opt core.Options, names ...string) core.ResultSet {
	b.Helper()
	rs := core.ResultSet{}
	for _, name := range names {
		bench, ok := suite.ByName(name)
		if !ok {
			b.Fatalf("unknown program %q", name)
		}
		r, err := core.Run(bench, opt)
		if err != nil {
			b.Fatal(err)
		}
		rs[name] = r
	}
	return rs
}

func defaultOpt() core.Options {
	o := core.DefaultOptions()
	o.SkipCheck = true // validation is covered by go test; benches measure
	return o
}

var allPrograms = suite.Names()

// BenchmarkTable2 regenerates Table 2: per-program static/dynamic/uop/
// memory-reference characteristics for the whole suite.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := runSet(b, defaultOpt(), allPrograms...)
		if i == 0 {
			for _, name := range []string{"matvec.mmx", "fft.mmx"} {
				rep := rs[name].Report
				b.ReportMetric(rep.PercentMMX(), name+"_%mmx")
			}
			b.ReportMetric(float64(rs["image.c"].Report.DynamicInstructions), "image.c_dyn")
		}
	}
}

// BenchmarkTable3 regenerates Table 3: the non-MMX/MMX ratio rows.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := runSet(b, defaultOpt(), allPrograms...)
		if i == 0 {
			for _, base := range []string{"matvec", "image", "iir", "fft", "fir", "radar", "g722", "jpeg"} {
				r := core.Compare(rs[base+".c"].Report, rs[base+".mmx"].Report)
				b.ReportMetric(r.Speedup, base+"_speedup")
			}
		}
	}
}

// BenchmarkFig1a regenerates Figure 1(a): the MMX instruction-category
// breakdown of every .mmx program.
func BenchmarkFig1a(b *testing.B) {
	mmxProgs := []string{"fft.mmx", "fir.mmx", "iir.mmx", "matvec.mmx",
		"radar.mmx", "g722.mmx", "jpeg.mmx", "image.mmx"}
	for i := 0; i < b.N; i++ {
		rs := runSet(b, defaultOpt(), mmxProgs...)
		if i == 0 {
			bd := rs["image.mmx"].Report.MMXBreakdown()
			b.ReportMetric(bd[0], "image_pack%")
			b.ReportMetric(rs["fir.mmx"].Report.MMXBreakdown()[0], "fir_pack%")
		}
	}
}

// BenchmarkFig1b regenerates Figure 1(b): static and dynamic count ratios.
func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := runSet(b, defaultOpt(), "image.c", "image.mmx", "jpeg.c", "jpeg.mmx")
		if i == 0 {
			r := core.Compare(rs["image.c"].Report, rs["image.mmx"].Report)
			b.ReportMetric(r.Static, "image_static_ratio")
			b.ReportMetric(r.Dynamic, "image_dynamic_ratio")
		}
	}
}

// BenchmarkFig2a regenerates Figure 2(a): C-only/MMX ratios for the suite.
func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := runSet(b, defaultOpt(), "matvec.c", "matvec.mmx", "g722.c", "g722.mmx")
		if i == 0 {
			r := core.Compare(rs["matvec.c"].Report, rs["matvec.mmx"].Report)
			b.ReportMetric(r.Speedup, "matvec_speedup")
			b.ReportMetric(r.MemRefs, "matvec_memref_ratio")
		}
	}
}

// BenchmarkFig2b regenerates Figure 2(b): FP-library/MMX ratios for the
// three kernels that have FP versions.
func BenchmarkFig2b(b *testing.B) {
	progs := []string{"fft.fp", "fft.mmx", "fir.fp", "fir.mmx", "iir.fp", "iir.mmx"}
	for i := 0; i < b.N; i++ {
		rs := runSet(b, defaultOpt(), progs...)
		if i == 0 {
			for _, base := range []string{"fft", "fir", "iir"} {
				r := core.Compare(rs[base+".fp"].Report, rs[base+".mmx"].Report)
				b.ReportMetric(r.Speedup, base+"_fp_speedup")
			}
		}
	}
}

// BenchmarkKernels runs each kernel program individually so per-program
// simulation throughput is visible.
func BenchmarkKernels(b *testing.B) {
	for _, name := range []string{"fft.mmx", "fir.mmx", "iir.mmx", "matvec.mmx"} {
		b.Run(name, func(b *testing.B) {
			bench, _ := suite.ByName(name)
			for i := 0; i < b.N; i++ {
				r, err := core.Run(bench, defaultOpt())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Report.Cycles), "modelcycles")
			}
		})
	}
}

// BenchmarkSuiteSequential runs the full 19-program suite on one worker —
// the baseline for the parallel-runner speedup.
func BenchmarkSuiteSequential(b *testing.B) {
	benches := suite.All()
	opt := defaultOpt()
	opt.Parallelism = 1
	for i := 0; i < b.N; i++ {
		rs, err := core.RunAll(benches, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(core.Stats(rs).Instructions), "suite_instrs")
		}
	}
}

// BenchmarkSuiteParallel runs the same suite on the bounded worker pool
// (one worker per core). Comparing ns/op against BenchmarkSuiteSequential
// gives the suite wall-time speedup recorded in EXPERIMENTS.md.
func BenchmarkSuiteParallel(b *testing.B) {
	benches := suite.All()
	opt := defaultOpt()
	opt.Parallelism = 0 // auto: GOMAXPROCS
	for i := 0; i < b.N; i++ {
		rs, err := core.RunAll(benches, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(core.Stats(rs).Instructions), "suite_instrs")
		}
	}
}

// --- Ablations (DESIGN.md §5) ----------------------------------------------

// ablateOpt returns options with one timing-model change.
func ablateOpt(change func(*pentium.Config)) core.Options {
	o := defaultOpt()
	cfg := pentium.DefaultConfig()
	change(&cfg)
	o.Pentium = &cfg
	return o
}

// BenchmarkAblationEmms: how much of the fir.mmx and g722.mmx slowdown is
// the 50-cycle MMX-to-FP switch. With emms free, their speedups rise.
func BenchmarkAblationEmms(b *testing.B) {
	free := ablateOpt(func(c *pentium.Config) { c.EmmsLatency = 0 })
	for i := 0; i < b.N; i++ {
		base := runSet(b, defaultOpt(), "fir.c", "fir.mmx", "g722.c", "g722.mmx")
		abl := runSet(b, free, "fir.c", "fir.mmx", "g722.c", "g722.mmx")
		if i == 0 {
			for _, fam := range []string{"fir", "g722"} {
				s0 := core.Compare(base[fam+".c"].Report, base[fam+".mmx"].Report).Speedup
				s1 := core.Compare(abl[fam+".c"].Report, abl[fam+".mmx"].Report).Speedup
				b.ReportMetric(s0, fam+"_speedup_emms50")
				b.ReportMetric(s1, fam+"_speedup_emms0")
			}
		}
	}
}

// BenchmarkAblationPmadd: matvec's superlinear speedup collapses when the
// MMX multiplier is as slow and unpipelined as imul (10 cycles).
func BenchmarkAblationPmadd(b *testing.B) {
	slow := ablateOpt(func(c *pentium.Config) { c.MMXMulLatency = 10 })
	for i := 0; i < b.N; i++ {
		base := runSet(b, defaultOpt(), "matvec.c", "matvec.mmx")
		abl := runSet(b, slow, "matvec.c", "matvec.mmx")
		if i == 0 {
			b.ReportMetric(core.Compare(base["matvec.c"].Report, base["matvec.mmx"].Report).Speedup,
				"speedup_pmadd3")
			b.ReportMetric(core.Compare(abl["matvec.c"].Report, abl["matvec.mmx"].Report).Speedup,
				"speedup_pmadd10")
		}
	}
}

// BenchmarkAblationCache: how much of the suite's behavior is memory-
// reference reduction — with a perfect cache, cycle counts drop and the
// FFT's advantage narrows.
func BenchmarkAblationCache(b *testing.B) {
	perfect := defaultOpt()
	perfect.PerfectCache = true
	for i := 0; i < b.N; i++ {
		base := runSet(b, defaultOpt(), "fft.c", "fft.mmx", "image.c", "image.mmx")
		abl := runSet(b, perfect, "fft.c", "fft.mmx", "image.c", "image.mmx")
		if i == 0 {
			b.ReportMetric(core.Compare(base["fft.c"].Report, base["fft.mmx"].Report).Speedup,
				"fft_speedup_cached")
			b.ReportMetric(core.Compare(abl["fft.c"].Report, abl["fft.mmx"].Report).Speedup,
				"fft_speedup_perfect")
			b.ReportMetric(core.Compare(base["image.c"].Report, base["image.mmx"].Report).Speedup,
				"image_speedup_cached")
			b.ReportMetric(core.Compare(abl["image.c"].Report, abl["image.mmx"].Report).Speedup,
				"image_speedup_perfect")
		}
	}
}

// BenchmarkAblationPairing: dual issue off — the Pentium's second pipe
// matters more to the scalar versions than to the MMX ones.
func BenchmarkAblationPairing(b *testing.B) {
	single := ablateOpt(func(c *pentium.Config) { c.DisablePairing = true })
	for i := 0; i < b.N; i++ {
		base := runSet(b, defaultOpt(), "image.c", "image.mmx")
		abl := runSet(b, single, "image.c", "image.mmx")
		if i == 0 {
			b.ReportMetric(core.Compare(base["image.c"].Report, base["image.mmx"].Report).Speedup,
				"speedup_dualissue")
			b.ReportMetric(core.Compare(abl["image.c"].Report, abl["image.mmx"].Report).Speedup,
				"speedup_single")
		}
	}
}

// BenchmarkAblationBTB: branch prediction off — loop-heavy scalar code
// pays per-iteration mispredict penalties.
func BenchmarkAblationBTB(b *testing.B) {
	noBTB := ablateOpt(func(c *pentium.Config) { c.DisableBTB = true })
	for i := 0; i < b.N; i++ {
		base := runSet(b, defaultOpt(), "matvec.c", "matvec.mmx")
		abl := runSet(b, noBTB, "matvec.c", "matvec.mmx")
		if i == 0 {
			b.ReportMetric(core.Compare(base["matvec.c"].Report, base["matvec.mmx"].Report).Speedup,
				"speedup_btb")
			b.ReportMetric(core.Compare(abl["matvec.c"].Report, abl["matvec.mmx"].Report).Speedup,
				"speedup_nobtb")
		}
	}
}

// BenchmarkAblationDct2D: the paper's conclusion asks for a 2-D DCT in the
// MMX library. This runs jpeg.mmx against the jpeg2d.mmx variant (one
// fused nsDct2D call per block instead of sixteen staged 1-D calls) —
// identical output bits, fewer calls, fewer cycles.
func BenchmarkAblationDct2D(b *testing.B) {
	jpegMMX, ok := suite.ByName("jpeg.mmx")
	if !ok {
		b.Fatal("suite missing jpeg.mmx")
	}
	for i := 0; i < b.N; i++ {
		oneD, err := core.Run(jpegMMX, defaultOpt())
		if err != nil {
			b.Fatal(err)
		}
		twoD, err := core.Run(apps.JPEGMMX2D(), defaultOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(oneD.Report.Cycles), "cycles_16x1d")
			b.ReportMetric(float64(twoD.Report.Cycles), "cycles_fused2d")
			b.ReportMetric(float64(oneD.Report.Calls), "calls_16x1d")
			b.ReportMetric(float64(twoD.Report.Calls), "calls_fused2d")
		}
	}
}

// TestBenchHarnessSmoke keeps the bench harness compiling and exercised in
// plain `go test` runs: a single tiny end-to-end run.
func TestBenchHarnessSmoke(t *testing.T) {
	bench, ok := suite.ByName("matvec.mmx")
	if !ok {
		t.Fatal("suite missing matvec.mmx")
	}
	r, err := core.Run(bench, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Report.Cycles == 0 {
		t.Error("no cycles recorded")
	}
	fmt.Fprintf(testWriter{t}, "matvec.mmx: %d cycles\n", r.Report.Cycles)
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(p))
	return len(p), nil
}
