package mmxdsp

import (
	"testing"

	"mmxdsp/internal/core"
	"mmxdsp/internal/suite"
)

// TestParallelSuiteOutputIsByteIdentical is the acceptance gate for the
// concurrent runner: the full 19-program suite, run sequentially and on a
// wide worker pool, must render every table and figure byte-for-byte
// identically. Output validation is skipped (covered by package tests) so
// the double full-suite run stays affordable in `go test ./...`.
func TestParallelSuiteOutputIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-suite runs; skipped in -short mode")
	}
	benches := suite.All()

	seqOpt := core.DefaultOptions()
	seqOpt.SkipCheck = true
	seqOpt.Parallelism = 1
	seq, err := core.RunAll(benches, seqOpt)
	if err != nil {
		t.Fatal(err)
	}

	parOpt := core.DefaultOptions()
	parOpt.SkipCheck = true
	parOpt.Parallelism = 8 // wider than GOMAXPROCS on small machines: more interleaving
	par, err := core.RunAll(benches, parOpt)
	if err != nil {
		t.Fatal(err)
	}

	if len(seq) != len(benches) || len(par) != len(benches) {
		t.Fatalf("result counts: seq %d, par %d, want %d", len(seq), len(par), len(benches))
	}
	artifacts := map[string]func(core.ResultSet) string{
		"Table2":    core.Table2,
		"Table2CSV": core.Table2CSV,
		"Table3":    core.Table3,
		"Table3CSV": core.Table3CSV,
		"Fig1a":     core.Fig1a,
		"Fig1b":     core.Fig1b,
		"Fig2a":     core.Fig2a,
		"Fig2b":     core.Fig2b,
		"Notes":     core.Notes,
		"Markdown":  core.MarkdownReport,
	}
	for name, render := range artifacts {
		if a, b := render(seq), render(par); a != b {
			t.Errorf("%s differs between -j1 and -j8 runs:\n--- sequential\n%s\n--- parallel\n%s", name, a, b)
		}
	}
}
