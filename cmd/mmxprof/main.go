// Command mmxprof is the VTune-style deep profiler: it runs one benchmark
// program and reports hotspots, the instruction mix by class, the MMX
// category breakdown, branch and cache behavior, and call overhead — the
// per-program analysis behind the paper's Section 4.
//
// Usage:
//
//	mmxprof jpeg.mmx
//	mmxprof -top 20 radar.mmx
//	mmxprof -list   # show available programs
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mmxdsp/internal/core"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/suite"
)

func main() {
	var (
		top   = flag.Int("top", 10, "number of hot procedures to show")
		list  = flag.Bool("list", false, "list available programs")
		trace = flag.Int("trace", 0, "print the first N retired instructions of the measured region")
	)
	flag.Parse()

	if *list {
		for _, name := range suite.Names() {
			fmt.Println(name)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mmxprof [-top N] <program>   (mmxprof -list for names)")
		os.Exit(2)
	}
	name := flag.Arg(0)
	bench, ok := suite.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "mmxprof: unknown program %q (try -list)\n", name)
		os.Exit(2)
	}
	opt := core.DefaultOptions()
	if *trace > 0 {
		opt.Trace = os.Stdout
		opt.TraceLimit = *trace
	}
	res, err := core.Run(bench, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmxprof: %v\n", err)
		os.Exit(1)
	}
	rep := res.Report

	fmt.Printf("Program %s — %s\n\n", rep.Name, bench.Descr)
	fmt.Printf("Host simulation:       %12.1f ms wall, %.1f M instr/s\n",
		float64(res.Wall.Microseconds())/1000, res.InstrsPerSec()/1e6)
	fmt.Printf("Clock cycles:          %12d\n", rep.Cycles)
	fmt.Printf("Dynamic instructions:  %12d\n", rep.DynamicInstructions)
	fmt.Printf("Dynamic micro-ops:     %12d (Pentium II decode)\n", rep.Uops)
	fmt.Printf("Static instructions:   %12d\n", rep.StaticInstructions)
	fmt.Printf("Memory references:     %12d (%.2f%% of instructions)\n",
		rep.MemoryReferences, rep.PercentMemRefs())
	fmt.Printf("MMX instructions:      %12d (%.2f%% of instructions)\n",
		rep.MMXInstructions(), rep.PercentMMX())
	fmt.Printf("Function calls:        %12d (call+ret: %.2f%% of cycles)\n",
		rep.Calls, rep.CallRetCycleShare())
	fmt.Printf("Branches:              %12d (%d mispredicted)\n", rep.Branches, rep.Mispredicts)
	fmt.Printf("Instruction pairs:     %12d dual-issued\n", rep.Pairs)
	if rep.CacheAccesses > 0 {
		fmt.Printf("Cache: %d accesses, %d L1 misses (%.2f%%), %d L2 misses\n",
			rep.CacheAccesses, rep.L1Misses,
			100*float64(rep.L1Misses)/float64(rep.CacheAccesses), rep.L2Misses)
	}

	if mmx := rep.MMXInstructions(); mmx > 0 {
		bd := rep.MMXBreakdown()
		fmt.Printf("\nMMX category breakdown (%% of all instructions):\n")
		for i, label := range []string{"pack/unpack", "mmx arithmetic", "mmx moves", "emms"} {
			fmt.Printf("  %-16s %7.3f%%\n", label, bd[i])
		}
	}

	fmt.Printf("\nInstruction mix by class (count / cycles):\n")
	type classRow struct {
		class  isa.Class
		count  uint64
		cycles uint64
	}
	var rows []classRow
	for cl := 0; cl < isa.NumClasses; cl++ {
		if rep.ClassCounts[cl] > 0 {
			rows = append(rows, classRow{isa.Class(cl), rep.ClassCounts[cl], rep.ClassCycles[cl]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cycles > rows[j].cycles })
	for _, r := range rows {
		fmt.Printf("  %-10s %12d instrs  %12d cycles (%5.2f%%)\n",
			r.class, r.count, r.cycles, 100*float64(r.cycles)/float64(rep.Cycles))
	}

	fmt.Printf("\nHot procedures (self cycles):\n")
	n := *top
	if n > len(rep.Procs) {
		n = len(rep.Procs)
	}
	for _, p := range rep.Procs[:n] {
		fmt.Printf("  %-24s %12d cycles (%5.2f%%)  %12d instrs\n",
			p.Name, p.Cycles, 100*float64(p.Cycles)/float64(rep.Cycles), p.Instructions)
	}
}
