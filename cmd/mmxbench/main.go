// Command mmxbench runs the benchmark suite on the simulated
// Pentium-with-MMX and regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	mmxbench                  # run everything, print all tables and figures
//	mmxbench -only fft,image  # restrict to some benchmark families
//	mmxbench -table3 -csv     # one artifact, machine-readable
//	mmxbench -skip-check      # skip output validation (faster)
//	mmxbench -j 0             # run benchmarks in parallel (0 = all cores)
//	mmxbench -emms 0          # ablation: free emms
//	mmxbench -mmxmul 10       # ablation: unpipelined 10-cycle MMX multiplier
//	mmxbench -perfect-cache   # ablation: no cache penalties
//	mmxbench -bench-json BENCH_interp.json   # per-program host throughput
//	mmxbench -cpuprofile cpu.pprof -memprofile mem.pprof   # profile the simulator
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"mmxdsp/internal/core"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/suite"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "print Table 1 (benchmark summary)")
		table2 = flag.Bool("table2", false, "print Table 2 (instruction characteristics)")
		table3 = flag.Bool("table3", false, "print Table 3 (non-MMX/MMX ratios)")
		fig1a  = flag.Bool("fig1a", false, "print Figure 1(a) (MMX instruction mix)")
		fig1b  = flag.Bool("fig1b", false, "print Figure 1(b) (instruction-count ratios)")
		fig2a  = flag.Bool("fig2a", false, "print Figure 2(a) (C-only/MMX ratios)")
		fig2b  = flag.Bool("fig2b", false, "print Figure 2(b) (FP/MMX ratios)")
		notes  = flag.Bool("notes", false, "print Section 4 narrative metrics")
		csv    = flag.Bool("csv", false, "CSV output for tables 2 and 3")
		md     = flag.Bool("markdown", false, "full evaluation as a Markdown document")

		only      = flag.String("only", "", "comma-separated benchmark families (e.g. fft,image)")
		skipCheck = flag.Bool("skip-check", false, "skip output validation")
		jobs      = flag.Int("j", 0, "parallel benchmark runs (0 = one per core)")

		perfectCache = flag.Bool("perfect-cache", false, "ablation: disable the cache model")
		noPairing    = flag.Bool("no-pairing", false, "ablation: disable dual issue")
		noBTB        = flag.Bool("no-btb", false, "ablation: disable branch prediction")
		emms         = flag.Int("emms", -1, "override emms latency (cycles; -1 = default 50)")
		mmxMul       = flag.Int("mmxmul", 0, "override MMX multiplier latency (0 = default pipelined 3)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile after the run to this file")
		benchJSON  = flag.String("bench-json", "", "write per-program host throughput (JSON) to this file")

		dispatch    = flag.String("dispatch", "auto", "interpreter inner loop: auto, trace, block, predecode or generic")
		benchCommit = flag.String("bench-commit", "", "git commit hash to stamp into the -bench-json artifact")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmxbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mmxbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	all := !(*table1 || *table2 || *table3 || *fig1a || *fig1b || *fig2a || *fig2b || *notes)

	opt := core.DefaultOptions()
	opt.SkipCheck = *skipCheck
	opt.PerfectCache = *perfectCache
	switch *dispatch {
	case "auto":
		opt.Dispatch = core.DispatchAuto
	case "trace", "block", "predecode", "generic":
		opt.Dispatch = *dispatch
	default:
		fmt.Fprintf(os.Stderr, "mmxbench: -dispatch: unknown mode %q (want auto, trace, block, predecode or generic)\n", *dispatch)
		os.Exit(2)
	}
	cfg := pentium.DefaultConfig()
	cfg.DisablePairing = *noPairing
	cfg.DisableBTB = *noBTB
	cfg.EmmsLatency = *emms
	cfg.MMXMulLatency = *mmxMul
	opt.Pentium = &cfg

	benches := suite.All()
	if *only != "" {
		want := map[string]bool{}
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(f)] = true
		}
		var filtered []core.Benchmark
		for _, b := range benches {
			if want[b.Base] {
				filtered = append(filtered, b)
			}
		}
		benches = filtered
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "mmxbench: no benchmarks selected")
		os.Exit(2)
	}

	opt.Parallelism = *jobs
	opt.Progress = func(st core.RunStatus) {
		if st.Err != nil {
			fmt.Fprintf(os.Stderr, "[%2d/%d] %-12s FAILED: %v\n",
				st.Done, st.Total, st.Benchmark.Name(), st.Err)
			return
		}
		fmt.Fprintf(os.Stderr, "[%2d/%d] %-12s %12d cycles, %10d instructions  (%6.0f ms, %5.1f M instr/s)\n",
			st.Done, st.Total, st.Benchmark.Name(),
			st.Result.Report.Cycles, st.Result.Report.DynamicInstructions,
			float64(st.Result.Wall.Microseconds())/1000, st.Result.InstrsPerSec()/1e6)
	}

	start := time.Now()
	rs, err := core.RunAll(benches, opt)
	elapsed := time.Since(start)
	stats := core.Stats(rs)
	fmt.Fprintf(os.Stderr, "suite: %d programs, %d instructions in %.2fs wall (%.1f M instr/s aggregate)\n\n",
		stats.Programs, stats.Instructions, elapsed.Seconds(), stats.InstrsPerSec()/1e6)
	if err != nil {
		// Failures are aggregated; tables below still cover the programs
		// that succeeded.
		var runErr *core.RunError
		if errors.As(err, &runErr) {
			fmt.Fprintf(os.Stderr, "mmxbench: %v\n", runErr)
		} else {
			fmt.Fprintf(os.Stderr, "mmxbench: %v\n", err)
		}
		defer os.Exit(1)
	}

	if *benchJSON != "" {
		mode := *dispatch
		if mode == "auto" {
			// Auto resolves to block dispatch for profiled (untraced)
			// runs; record the effective mode.
			mode = "block"
		}
		if err := writeBenchJSON(*benchJSON, rs, elapsed, mode, *benchCommit); err != nil {
			fmt.Fprintf(os.Stderr, "mmxbench: -bench-json: %v\n", err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmxbench: -memprofile: %v\n", err)
			os.Exit(2)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mmxbench: -memprofile: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}

	show := func(enabled bool, text string) {
		if all || enabled {
			fmt.Println(text)
		}
	}
	if *md {
		fmt.Print(core.MarkdownReport(rs))
		return
	}
	if *csv {
		show(*table2, core.Table2CSV(rs))
		show(*table3, core.Table3CSV(rs))
		return
	}
	show(*table1, core.Table1(benches))
	show(*table2, core.Table2(rs))
	show(*table3, core.Table3(rs))
	show(*fig1a, core.Fig1a(rs))
	show(*fig1b, core.Fig1b(rs))
	show(*fig2a, core.Fig2a(rs))
	show(*fig2b, core.Fig2b(rs))
	show(*notes, core.Notes(rs))
}

// benchRecord is one program's host-side throughput measurement.
type benchRecord struct {
	Program      string  `json:"program"`
	WallSeconds  float64 `json:"wall_seconds"`
	Instructions uint64  `json:"instructions"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
	// Block-dispatch coverage: basic blocks compiled and the share of
	// retired events applied through the fused block fast path.
	Blocks      int     `json:"blocks"`
	FastPathPct float64 `json:"fast_path_pct"`
	// Trace-dispatch coverage (dispatch=trace only): superblocks formed,
	// side exits as a share of trace entries, and the share of retired
	// instructions that retired inside a superblock.
	TracesFormed     int     `json:"traces_formed,omitempty"`
	SideExitPct      float64 `json:"side_exit_pct,omitempty"`
	TraceResidentPct float64 `json:"trace_resident_pct,omitempty"`
	// Trace-tree growth: child paths attached, side-exit-governor deopts,
	// and the share of retired instructions in child-path iterations.
	TreeNodes       int     `json:"tree_nodes,omitempty"`
	TraceDeopts     uint64  `json:"trace_deopts,omitempty"`
	TreeResidentPct float64 `json:"tree_resident_pct,omitempty"`
}

// benchFile is the schema of the -bench-json artifact.
type benchFile struct {
	GitCommit      string        `json:"git_commit,omitempty"`
	Dispatch       string        `json:"dispatch"`
	UTCDate        string        `json:"utc_date"`
	Programs       []benchRecord `json:"programs"`
	SuiteWallSec   float64       `json:"suite_wall_seconds"`
	GeomeanIPS     float64       `json:"geomean_instrs_per_sec"`
	TotalInstrs    uint64        `json:"total_instructions"`
	AggregateIPS   float64       `json:"aggregate_instrs_per_sec"`
	HostGoroutines int           `json:"host_parallelism"`
}

func writeBenchJSON(path string, rs core.ResultSet, elapsed time.Duration, mode, commit string) error {
	names := make([]string, 0, len(rs))
	for name := range rs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := benchFile{
		GitCommit:      commit,
		Dispatch:       mode,
		UTCDate:        time.Now().UTC().Format(time.RFC3339),
		SuiteWallSec:   elapsed.Seconds(),
		HostGoroutines: runtime.GOMAXPROCS(0),
	}
	logSum, logN := 0.0, 0
	for _, name := range names {
		r := rs[name]
		ips := r.InstrsPerSec()
		out.Programs = append(out.Programs, benchRecord{
			Program:          name,
			WallSeconds:      r.Wall.Seconds(),
			Instructions:     r.Report.DynamicInstructions,
			InstrsPerSec:     ips,
			Blocks:           r.Blocks.Compiled,
			FastPathPct:      r.Blocks.FastPct(),
			TracesFormed:     r.Traces.Formed,
			SideExitPct:      r.Traces.SideExitPct(),
			TraceResidentPct: r.Traces.ResidentPct(),
			TreeNodes:        r.Traces.TreeNodes,
			TraceDeopts:      r.Traces.Deopts,
			TreeResidentPct:  r.Traces.TreeResidentPct(),
		})
		out.TotalInstrs += r.Report.DynamicInstructions
		if ips > 0 {
			logSum += math.Log(ips)
			logN++
		}
	}
	if logN > 0 {
		out.GeomeanIPS = math.Exp(logSum / float64(logN))
	}
	if elapsed > 0 {
		out.AggregateIPS = float64(out.TotalInstrs) / elapsed.Seconds()
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
