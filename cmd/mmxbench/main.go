// Command mmxbench runs the benchmark suite on the simulated
// Pentium-with-MMX and regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	mmxbench                  # run everything, print all tables and figures
//	mmxbench -only fft,image  # restrict to some benchmark families
//	mmxbench -table3 -csv     # one artifact, machine-readable
//	mmxbench -skip-check      # skip output validation (faster)
//	mmxbench -emms 0          # ablation: free emms
//	mmxbench -mmxmul 10       # ablation: unpipelined 10-cycle MMX multiplier
//	mmxbench -perfect-cache   # ablation: no cache penalties
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mmxdsp/internal/core"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/suite"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "print Table 1 (benchmark summary)")
		table2 = flag.Bool("table2", false, "print Table 2 (instruction characteristics)")
		table3 = flag.Bool("table3", false, "print Table 3 (non-MMX/MMX ratios)")
		fig1a  = flag.Bool("fig1a", false, "print Figure 1(a) (MMX instruction mix)")
		fig1b  = flag.Bool("fig1b", false, "print Figure 1(b) (instruction-count ratios)")
		fig2a  = flag.Bool("fig2a", false, "print Figure 2(a) (C-only/MMX ratios)")
		fig2b  = flag.Bool("fig2b", false, "print Figure 2(b) (FP/MMX ratios)")
		notes  = flag.Bool("notes", false, "print Section 4 narrative metrics")
		csv    = flag.Bool("csv", false, "CSV output for tables 2 and 3")
		md     = flag.Bool("markdown", false, "full evaluation as a Markdown document")

		only      = flag.String("only", "", "comma-separated benchmark families (e.g. fft,image)")
		skipCheck = flag.Bool("skip-check", false, "skip output validation")

		perfectCache = flag.Bool("perfect-cache", false, "ablation: disable the cache model")
		noPairing    = flag.Bool("no-pairing", false, "ablation: disable dual issue")
		noBTB        = flag.Bool("no-btb", false, "ablation: disable branch prediction")
		emms         = flag.Int("emms", -1, "override emms latency (cycles; -1 = default 50)")
		mmxMul       = flag.Int("mmxmul", 0, "override MMX multiplier latency (0 = default pipelined 3)")
	)
	flag.Parse()

	all := !(*table1 || *table2 || *table3 || *fig1a || *fig1b || *fig2a || *fig2b || *notes)

	opt := core.DefaultOptions()
	opt.SkipCheck = *skipCheck
	opt.PerfectCache = *perfectCache
	cfg := pentium.DefaultConfig()
	cfg.DisablePairing = *noPairing
	cfg.DisableBTB = *noBTB
	cfg.EmmsLatency = *emms
	cfg.MMXMulLatency = *mmxMul
	opt.Pentium = cfg

	benches := suite.All()
	if *only != "" {
		want := map[string]bool{}
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(f)] = true
		}
		var filtered []core.Benchmark
		for _, b := range benches {
			if want[b.Base] {
				filtered = append(filtered, b)
			}
		}
		benches = filtered
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "mmxbench: no benchmarks selected")
		os.Exit(2)
	}

	rs := core.ResultSet{}
	for _, b := range benches {
		fmt.Fprintf(os.Stderr, "running %-12s ...", b.Name())
		r, err := core.Run(b, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, " FAILED\nmmxbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, " %12d cycles, %10d instructions\n",
			r.Report.Cycles, r.Report.DynamicInstructions)
		rs[b.Name()] = r
	}
	fmt.Fprintln(os.Stderr)

	show := func(enabled bool, text string) {
		if all || enabled {
			fmt.Println(text)
		}
	}
	if *md {
		fmt.Print(core.MarkdownReport(rs))
		return
	}
	if *csv {
		show(*table2, core.Table2CSV(rs))
		show(*table3, core.Table3CSV(rs))
		return
	}
	show(*table1, core.Table1(benches))
	show(*table2, core.Table2(rs))
	show(*table3, core.Table3(rs))
	show(*fig1a, core.Fig1a(rs))
	show(*fig1b, core.Fig1b(rs))
	show(*fig2a, core.Fig2a(rs))
	show(*fig2b, core.Fig2b(rs))
	show(*notes, core.Notes(rs))
}
