// Command mmxd is the long-running simulation daemon: it serves benchmark
// runs of the simulated Pentium-with-MMX over HTTP/JSON, caching compiled
// programs across requests and draining gracefully on SIGTERM.
//
// Usage:
//
//	mmxd                        # serve on :8931
//	mmxd -addr 127.0.0.1:9000   # custom listen address
//	mmxd -cache 128 -queue 256  # bigger artifact cache / admission queue
//	mmxd -timeout 30s           # default per-request deadline
//	mmxd -result-cache 1024     # bigger result cache (0 disables)
//	mmxd -result-cache-dir /var/cache/mmxd   # results survive restarts
//	mmxd -result-cache-max-bytes 64000000    # bound the spill directory
//	mmxd -warm-suite auto,trace # prefetch the suite table before serving
//	mmxd -tenant-rate 10 -tenant-concurrent 4   # per-tenant quotas
//	mmxd -campaign-dir /var/lib/mmxd/campaigns  # persist sweep artifacts
//
// Endpoints: POST /run, POST /asm, POST /campaign (plus GET/DELETE
// /campaign/{id} and GET /campaign/{id}/events), GET /table, GET /healthz,
// GET /metrics. See
// internal/server for the request and response schemas, and the README's
// "Running mmxd" section for examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mmxdsp/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8931", "listen address")
		cacheSize = flag.Int("cache", 64, "compiled-program cache entries (LRU)")
		workers   = flag.Int("workers", 0, "max concurrent simulations (0 = one per core)")
		queue     = flag.Int("queue", 64, "admission-queue depth before 429")
		timeout   = flag.Duration("timeout", 2*time.Minute, "default per-request deadline (0 = none)")
		maxInstrs = flag.Int64("max-instrs", 0, "server-wide instruction-budget cap (0 = unlimited)")
		resCache  = flag.Int("result-cache", 512, "result-cache entries (LRU of response bytes; 0 disables)")
		resDir    = flag.String("result-cache-dir", "", "spill cached results here so they survive restarts")
		resBytes  = flag.Int64("result-cache-max-bytes", 256<<20, "spill-directory size bound; oldest results evicted beyond it (0 = unlimited)")
		resFiles  = flag.Int("result-cache-max-files", 8192, "spill-directory file-count bound (0 = unlimited)")
		grace     = flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight requests")
		warmSuite = flag.String("warm-suite", "", "prefetch the whole-suite table for these dispatch modes (comma-separated, e.g. auto,trace) before serving")

		maxSource    = flag.Int("max-source-bytes", 0, "largest /asm source listing accepted (0 = 4 MiB default)")
		asmMaxInstrs = flag.Int64("asm-max-instrs", 0, "instruction-budget cap for /asm runs (0 = default, -1 = uncapped)")
		tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant requests/sec (token bucket; 0 disables tenant limits)")
		tenantBurst  = flag.Int("tenant-burst", 0, "per-tenant burst size (0 = max(1, tenant-rate))")
		tenantConc   = flag.Int("tenant-concurrent", 0, "per-tenant concurrent-run cap (0 = unlimited)")
		tenantQuota  = flag.Int64("tenant-instr-quota", 0, "per-tenant simulated-instruction quota per window (0 = unlimited)")
		tenantWindow = flag.Duration("tenant-window", 0, "instruction-quota window (0 = 1m)")

		campaignDir       = flag.String("campaign-dir", "", "persist completed campaigns' sensitivity artifacts here")
		campaignMaxPoints = flag.Int("campaign-max-points", 0, "largest expanded campaign grid accepted (0 = 4096)")
		campaignWorkers   = flag.Int("campaign-workers", 0, "concurrent points per campaign (0 = 4)")
		campaignMaxActive = flag.Int("campaign-max-active", 0, "concurrently running campaigns before 429 (0 = 4)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: mmxd [flags]")
		os.Exit(2)
	}

	// The flag speaks "0 = off"; the Config zero value means "default", so
	// off maps to the negative sentinel.
	resEntries := *resCache
	if resEntries <= 0 {
		resEntries = -1
	}
	srv := server.New(server.Config{
		CacheEntries:       *cacheSize,
		Workers:            *workers,
		QueueDepth:         *queue,
		DefaultTimeout:     *timeout,
		MaxInstrsCap:       *maxInstrs,
		ResultCacheEntries: resEntries,
		ResultCacheDir:     *resDir,

		ResultCacheSpillMaxBytes: *resBytes,
		ResultCacheSpillMaxFiles: *resFiles,

		MaxSourceBytes:  *maxSource,
		AsmMaxInstrsCap: *asmMaxInstrs,

		CampaignDir:       *campaignDir,
		CampaignMaxPoints: *campaignMaxPoints,
		CampaignWorkers:   *campaignWorkers,
		CampaignMaxActive: *campaignMaxActive,
		Tenant: server.TenantLimits{
			Rate:          *tenantRate,
			Burst:         *tenantBurst,
			MaxConcurrent: *tenantConc,
			InstrQuota:    *tenantQuota,
			Window:        *tenantWindow,
		},
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *warmSuite != "" {
		var modes []string
		for _, m := range strings.Split(*warmSuite, ",") {
			if m = strings.TrimSpace(m); m != "" {
				modes = append(modes, m)
			}
		}
		start := time.Now()
		log.Printf("mmxd: warming suite table for %v", modes)
		if err := srv.WarmSuite(context.Background(), modes); err != nil {
			log.Fatalf("mmxd: -warm-suite: %v", err)
		}
		log.Printf("mmxd: suite warm in %.1fs", time.Since(start).Seconds())
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("mmxd: serving on %s (cache=%d results=%d queue=%d timeout=%s)",
			*addr, *cacheSize, resEntries, *queue, *timeout)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatalf("mmxd: serve: %v", err)
	case sig := <-sigCh:
		// Graceful drain: stop advertising health, refuse new work, let
		// requests already admitted finish within the grace period.
		log.Printf("mmxd: %v: draining (grace %s)", sig, *grace)
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("mmxd: shutdown: %v", err)
			_ = httpSrv.Close()
			os.Exit(1)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("mmxd: serve: %v", err)
		}
		log.Printf("mmxd: drained cleanly")
	}
}
