// Command mmxasm prints the assembly listing of any benchmark program in
// the suite — useful for inspecting what the macro-assembled kernels,
// libraries and applications actually execute.
//
// Usage:
//
//	mmxasm fir.mmx          # disassembly with labels
//	mmxasm -stats matvec.c  # program statistics only
//	mmxasm -list            # show available programs
package main

import (
	"flag"
	"fmt"
	"os"

	"mmxdsp/internal/suite"
)

func main() {
	var (
		stats = flag.Bool("stats", false, "print program statistics instead of the listing")
		list  = flag.Bool("list", false, "list available programs")
	)
	flag.Parse()

	if *list {
		for _, name := range suite.Names() {
			fmt.Println(name)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mmxasm [-stats] <program>   (mmxasm -list for names)")
		os.Exit(2)
	}
	bench, ok := suite.ByName(flag.Arg(0))
	if !ok {
		fmt.Fprintf(os.Stderr, "mmxasm: unknown program %q (try -list)\n", flag.Arg(0))
		os.Exit(2)
	}
	prog, err := bench.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmxasm: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Printf("program:      %s\n", prog.Name)
		fmt.Printf("instructions: %d\n", len(prog.Insts))
		fmt.Printf("procedures:   %d\n", len(prog.Procs))
		fmt.Printf("data bytes:   %d\n", len(prog.Data))
		fmt.Printf("bss bytes:    %d\n", prog.BSSSize)
		fmt.Printf("image size:   %d\n", prog.MemSize)
		for _, p := range prog.Procs {
			fmt.Printf("  proc %-24s [%d, %d)\n", p.Name, p.Start, p.End)
		}
		return
	}
	fmt.Print(prog.Listing())
}
