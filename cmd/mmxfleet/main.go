// Command mmxfleet is the fleet coordinator: it fronts N mmxd backends,
// routing each run to the backend whose compiled-program cache already
// holds the artifact (rendezvous hashing), health-checking the fleet,
// retrying and optionally hedging slow requests, and scatter-gathering
// full table runs across every backend.
//
// Usage:
//
//	mmxfleet -backends http://127.0.0.1:8931,http://127.0.0.1:8932
//	mmxfleet -addr :8930 -retries 3 -hedge-after 250ms
//	mmxfleet -probe-interval 1s -fail-threshold 2
//
// Endpoints: POST /run (mmxd schema, routed), POST /asm (user-submitted
// programs, routed by source hash), POST /suite (scatter-gather
// Table 2/3), POST /campaign (ablation grids sharded across the fleet,
// plus GET/DELETE /campaign/{id} and GET /campaign/{id}/events),
// GET /programs, GET /healthz, GET /metrics. See
// internal/cluster for behavior, and the README's "Running a fleet"
// section for a walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mmxdsp/internal/cluster"
)

func main() {
	var (
		addr          = flag.String("addr", ":8930", "listen address")
		backends      = flag.String("backends", "", "comma-separated mmxd base URLs (required)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "health-probe spacing")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "health-probe round-trip bound")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive probe failures before a backend is dead")
		retries       = flag.Int("retries", 2, "per-request retry budget (conn errors and 429s)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "hedge a second request after this latency (0 = off)")
		maxInflight   = flag.Int64("max-inflight", 0, "per-backend in-flight cap before affinity fallback (0 = off)")
		resCache      = flag.Int("result-cache", 512, "coordinator result-cache entries (a hit skips the backend round-trip; 0 disables)")
		maxSource     = flag.Int("max-source-bytes", 0, "largest /asm source listing accepted (0 = 4 MiB default)")
		grace         = flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight requests")

		campaignDir       = flag.String("campaign-dir", "", "persist completed campaigns' sensitivity artifacts here")
		campaignMaxPoints = flag.Int("campaign-max-points", 0, "largest expanded campaign grid accepted (0 = 4096)")
		campaignWorkers   = flag.Int("campaign-workers", 0, "concurrently routed points per campaign (0 = 2*backends+2)")
		campaignMaxActive = flag.Int("campaign-max-active", 0, "concurrently running campaigns before 429 (0 = 4)")
	)
	flag.Parse()
	if flag.NArg() != 0 || *backends == "" {
		fmt.Fprintln(os.Stderr, "usage: mmxfleet -backends url,url,... [flags]")
		os.Exit(2)
	}

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	resEntries := *resCache
	if resEntries <= 0 {
		resEntries = -1 // flag "0 = off" -> Config's negative sentinel
	}
	coord, err := cluster.New(cluster.Config{
		Backends:           urls,
		ProbeInterval:      *probeInterval,
		ProbeTimeout:       *probeTimeout,
		FailThreshold:      *failThreshold,
		Retries:            *retries,
		HedgeAfter:         *hedgeAfter,
		MaxInflight:        *maxInflight,
		MaxSourceBytes:     *maxSource,
		ResultCacheEntries: resEntries,

		CampaignDir:       *campaignDir,
		CampaignMaxPoints: *campaignMaxPoints,
		CampaignWorkers:   *campaignWorkers,
		CampaignMaxActive: *campaignMaxActive,
	})
	if err != nil {
		log.Fatalf("mmxfleet: %v", err)
	}
	coord.Start()
	defer coord.Stop()

	httpSrv := &http.Server{Addr: *addr, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("mmxfleet: serving on %s, %d backends (probe=%s retries=%d hedge=%s results=%d)",
			*addr, len(urls), *probeInterval, *retries, *hedgeAfter, resEntries)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatalf("mmxfleet: serve: %v", err)
	case sig := <-sigCh:
		// Graceful drain, mirroring mmxd: stop advertising health, shed new
		// work, let routed requests finish within the grace period.
		log.Printf("mmxfleet: %v: draining (grace %s)", sig, *grace)
		coord.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("mmxfleet: shutdown: %v", err)
			_ = httpSrv.Close()
			os.Exit(1)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("mmxfleet: serve: %v", err)
		}
		log.Printf("mmxfleet: drained cleanly")
	}
}
