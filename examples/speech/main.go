// Speech: G.722 wideband speech coding round trip — encode a synthetic
// 16 kHz utterance to 64 kbit/s, decode it, and report the achieved
// signal-to-noise ratio and compression.
package main

import (
	"fmt"
	"math"

	"mmxdsp/internal/g722"
	"mmxdsp/internal/synth"
)

func main() {
	const n = 16000 // one second at 16 kHz
	speech := synth.Speech(n, 42)
	in := make([]int16, n)
	for i, v := range speech {
		in[i] = int16(v * 14000)
	}

	codes := g722.NewEncoder().Encode(in)
	out := g722.NewDecoder().Decode(codes)

	// SNR at the QMF group delay.
	best, bestDelay := -99.0, 0
	for d := 0; d < 40; d++ {
		var sig, noise float64
		for i := 0; i+d < len(out) && i < len(in); i++ {
			r, g := float64(in[i]), float64(out[i+d])
			sig += r * r
			noise += (r - g) * (r - g)
		}
		if noise > 0 {
			if s := 10 * math.Log10(sig/noise); s > best {
				best, bestDelay = s, d
			}
		}
	}

	fmt.Printf("input:    %d samples (16-bit, 16 kHz) = %d bytes\n", n, 2*n)
	fmt.Printf("encoded:  %d bytes (64 kbit/s, 4:1)\n", len(codes))
	fmt.Printf("decoded:  %d samples\n", len(out))
	fmt.Printf("quality:  %.1f dB SNR at %d samples codec delay\n", best, bestDelay)
}
