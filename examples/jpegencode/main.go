// Jpegencode: compress a bitmap to a real JFIF file with the from-scratch
// baseline JPEG encoder at several quality settings. The outputs decode
// with any standard JPEG decoder.
package main

import (
	"fmt"
	"log"
	"os"

	"mmxdsp/internal/bmp"
	"mmxdsp/internal/jpegenc"
	"mmxdsp/internal/synth"
)

func main() {
	const w, h = 224, 160 // the paper's ~118 kB bitmap workload size
	img, err := bmp.FromRGB(w, h, synth.ImageRGB(w, h, 0x7E6))
	if err != nil {
		log.Fatal(err)
	}
	raw := bmp.Encode(img)
	if err := os.WriteFile("input.bmp", raw, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input.bmp: %d bytes (%dx%d, 24-bit)\n", len(raw), w, h)

	for _, q := range []jpegenc.Quality{25, 50, 90} {
		data := jpegenc.NewEncoder(q).Encode(img)
		name := fmt.Sprintf("output_q%d.jpg", q)
		if err := os.WriteFile(name, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d bytes (%.1f:1)\n", name, len(data),
			float64(len(raw))/float64(len(data)))
	}
}
