// Quickstart: write a small MMX assembly program with the macro-assembler,
// execute it on the simulated Pentium-with-MMX, and read the VTune-style
// profile — the core workflow of this library in ~60 lines.
package main

import (
	"fmt"
	"log"

	"mmxdsp/internal/asm"
	"mmxdsp/internal/isa"
	"mmxdsp/internal/mem"
	"mmxdsp/internal/pentium"
	"mmxdsp/internal/profile"
	"mmxdsp/internal/vm"
)

func main() {
	// A saturating 16-bit vector add, 4 lanes per instruction.
	const n = 1024
	x := make([]int16, n)
	y := make([]int16, n)
	for i := range x {
		x[i] = int16(i * 7)
		y[i] = int16(30000)
	}

	b := asm.NewBuilder("quickstart")
	b.Words("x", x)
	b.Words("y", y)
	b.Reserve("out", 2*n)
	b.Proc("main")
	b.I(isa.PROFON)
	b.I(isa.MOV, asm.R(isa.ECX), asm.Imm(0))
	b.Label("loop")
	b.I(isa.MOVQ, asm.R(isa.MM0), asm.SymIdx(isa.SizeQ, "x", isa.ECX, 2, 0))
	b.I(isa.PADDSW, asm.R(isa.MM0), asm.SymIdx(isa.SizeQ, "y", isa.ECX, 2, 0))
	b.I(isa.MOVQ, asm.SymIdx(isa.SizeQ, "out", isa.ECX, 2, 0), asm.R(isa.MM0))
	b.I(isa.ADD, asm.R(isa.ECX), asm.Imm(4))
	b.I(isa.CMP, asm.R(isa.ECX), asm.Imm(n))
	b.J(isa.JL, "loop")
	b.I(isa.EMMS)
	b.I(isa.PROFOFF)
	b.I(isa.HALT)

	prog, err := b.Link()
	if err != nil {
		log.Fatal(err)
	}

	model := pentium.New(pentium.DefaultConfig())
	col := profile.NewCollector(prog, model)
	cpu := vm.New(prog)
	cpu.Obs = col
	cpu.Hier = mem.NewHierarchy()
	if err := cpu.Run(1 << 20); err != nil {
		log.Fatal(err)
	}

	out, _ := cpu.Mem.ReadInt16s(prog.Addr("out"), 8)
	fmt.Printf("first outputs:  %v (saturating at 32767)\n", out)

	rep := col.Report(prog.Name)
	fmt.Printf("cycles:         %d\n", rep.Cycles)
	fmt.Printf("instructions:   %d (%.1f%% MMX)\n", rep.DynamicInstructions, rep.PercentMMX())
	fmt.Printf("per element:    %.2f cycles\n", float64(rep.Cycles)/float64(n))
}
