// Radar: the Doppler processing pipeline as a standalone application —
// synthesize echoes with clutter and a moving target, cancel the clutter,
// and recover the target's range gate and velocity from the FFT peak.
package main

import (
	"fmt"
	"log"

	"mmxdsp/internal/radarproc"
	"mmxdsp/internal/synth"
)

func main() {
	const (
		gates  = 12
		fftLen = 16
		prf    = 1000.0 // pulses per second
	)
	for _, scenario := range []struct {
		gate    int
		doppler float64
	}{
		{3, 0.125}, {7, 0.25}, {10, -0.1875},
	} {
		p := synth.RadarParams{
			Gates: gates, Pulses: fftLen + 1,
			Target: scenario.gate, Doppler: scenario.doppler,
			Clutter: 0.8, Seed: uint64(scenario.gate)*31 + 7,
		}
		re, im := synth.RadarEchoes(p)
		res, err := radarproc.Process(radarproc.Params{Gates: gates, FFTLen: fftLen}, re, im)
		if err != nil {
			log.Fatal(err)
		}
		g := res.StrongestGate()
		fmt.Printf("planted: gate %2d, doppler %+.4f cycles/pulse\n",
			scenario.gate, scenario.doppler)
		fmt.Printf("found:   gate %2d, doppler %+.4f cycles/pulse (%.1f Hz at PRF %.0f)\n\n",
			g, res.Frequency[g], res.Frequency[g]*prf, prf)
	}
}
