// Imagefilter: the paper's image benchmark as a user would run it — dim
// and color-switch a 640x480 bitmap with the pure-Go library, then run the
// same work through the simulated MMX pipeline (image.c vs image.mmx) and
// compare outputs and cycle counts. Writes before/after BMP files.
package main

import (
	"fmt"
	"log"
	"os"

	"mmxdsp/internal/apps"
	"mmxdsp/internal/bmp"
	"mmxdsp/internal/core"
	"mmxdsp/internal/imgproc"
	"mmxdsp/internal/synth"
)

func main() {
	const w, h = 640, 480
	pix := synth.ImageRGB(w, h, 0x1A6E)
	img, err := bmp.FromRGB(w, h, pix)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("input.bmp", bmp.Encode(img), 0o644); err != nil {
		log.Fatal(err)
	}

	// Pure-Go processing: the library a downstream user calls directly.
	out := imgproc.Pipeline(pix,
		imgproc.DimParams{Num: 3, Den: 4},
		imgproc.SwitchParams{DR: 40, DG: 0, DB: -55})
	outImg, _ := bmp.FromRGB(w, h, out)
	if err := os.WriteFile("output.bmp", bmp.Encode(outImg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote input.bmp and output.bmp (dimmed, red-shifted)")

	// The same pixels through the simulated Pentium, both versions.
	for _, bench := range apps.Image() {
		res, err := core.Run(bench, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		fmt.Printf("%-10s %12d cycles  %10d instructions  %5.1f%% MMX\n",
			rep.Name, rep.Cycles, rep.DynamicInstructions, rep.PercentMMX())
	}
	fmt.Println("(both versions validated byte-for-byte against imgproc.Pipeline)")
}
