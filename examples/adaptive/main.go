// Adaptive: LMS noise cancellation — the DSP kernel the paper notes is
// missing from the Intel MMX library ("Not all DSP algorithms have
// corresponding MMX functions (e.g. the LMS algorithm)") and which this
// repository provides both in pure Go (dsp.LMS) and hand-coded MMX
// (mmxlib.EmitLmsQ15).
//
// Scenario: a sensor hears speech plus noise that reached it through an
// unknown room filter; a reference microphone hears the raw noise. The
// LMS filter learns the room filter from the reference and subtracts its
// estimate, recovering the speech.
package main

import (
	"fmt"
	"math"

	"mmxdsp/internal/dsp"
	"mmxdsp/internal/synth"
)

func main() {
	const n = 8000
	speech := synth.Speech(n, 3)
	r := synth.NewRand(99)
	noise := make([]float64, n)
	for i := range noise {
		noise[i] = 0.8 * r.Float()
	}

	// The unknown acoustic path from the noise source to the sensor.
	room := dsp.NewFIR([]float64{0.45, -0.3, 0.18, 0.1, -0.05})
	heard := make([]float64, n)
	for i := range heard {
		heard[i] = speech[i] + room.Process(noise[i])
	}

	// Adapt: input = reference noise, desired = sensor signal. The error
	// signal converges to the speech.
	lms := dsp.NewLMS(5, 0.05)
	clean := make([]float64, n)
	for i := range heard {
		_, e := lms.Step(noise[i], heard[i])
		clean[i] = e
	}

	snr := func(sig []float64) float64 {
		var s, e float64
		for i := n / 2; i < n; i++ { // after convergence
			s += speech[i] * speech[i]
			d := sig[i] - speech[i]
			e += d * d
		}
		return 10 * math.Log10(s/e)
	}
	fmt.Printf("sensor SNR before cancellation: %6.1f dB\n", snr(heard))
	fmt.Printf("output SNR after LMS:           %6.1f dB\n", snr(clean))
	fmt.Printf("learned room filter:            %.3v\n", lms.Weights())
}
