module mmxdsp

go 1.22
