// End-to-end tests for the mmxd service: the full 21-program suite in all
// four dispatch modes served over HTTP must be byte-equivalent to direct
// core.Run reports, and the real daemon binary must drain gracefully on
// SIGTERM.
package mmxdsp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mmxdsp/internal/core"
	"mmxdsp/internal/server"
	"mmxdsp/internal/suite"
)

// TestServedReportsMatchDirectRuns is the service acceptance gate: every
// suite program, in every dispatch mode, served over HTTP, produces a
// report byte-equivalent to a direct core.Run with the same options.
func TestServedReportsMatchDirectRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full 21x4 sweep (served and direct); skipped in -short mode")
	}
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	benches := suite.All()
	modes := []string{core.DispatchTrace, core.DispatchBlock, core.DispatchPredecode, core.DispatchGeneric}

	for _, mode := range modes {
		// Direct side: the cache-free reference, run on the suite pool.
		direct, err := core.RunAll(benches, core.Options{SkipCheck: true, Dispatch: mode})
		if err != nil {
			t.Fatalf("direct RunAll(%s): %v", mode, err)
		}
		want := make(map[string]string, len(direct))
		for name, res := range direct {
			data, err := json.Marshal(res.Report)
			if err != nil {
				t.Fatal(err)
			}
			want[name] = string(data)
		}

		// Served side: all programs concurrently through the daemon.
		var wg sync.WaitGroup
		errs := make(chan error, len(benches))
		for _, bench := range benches {
			name := bench.Name()
			wg.Add(1)
			go func() {
				defer wg.Done()
				body := fmt.Sprintf(`{"program":%q,"dispatch":%q,"skip_check":true}`, name, mode)
				resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- fmt.Errorf("%s/%s: %v", name, mode, err)
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("%s/%s: reading response: %v", name, mode, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s/%s: status %d: %s", name, mode, resp.StatusCode, data)
					return
				}
				var env struct {
					Report json.RawMessage `json:"report"`
				}
				if err := json.Unmarshal(data, &env); err != nil {
					errs <- fmt.Errorf("%s/%s: decode: %v", name, mode, err)
					return
				}
				var buf bytes.Buffer
				if err := json.Compact(&buf, env.Report); err != nil {
					errs <- fmt.Errorf("%s/%s: compact: %v", name, mode, err)
					return
				}
				if buf.String() != want[name] {
					errs <- fmt.Errorf("%s/%s: served report is not byte-equivalent to direct core.Run", name, mode)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if wantRuns := int64(len(benches) * len(modes)); m.RunsOK != wantRuns {
		t.Errorf("runs_ok = %d, want %d", m.RunsOK, wantRuns)
	}
	if m.CacheMisses != uint64(len(benches)*len(modes)) {
		t.Errorf("cache_misses = %d, want %d (each program+mode compiles once)", m.CacheMisses, len(benches)*len(modes))
	}
}

// TestDaemonSIGTERMDrain exercises the real binary: build cmd/mmxd, serve
// a request, then SIGTERM with a request in flight — the in-flight run
// completes, new work is refused, and the process exits cleanly.
func TestDaemonSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary; skipped in -short mode")
	}
	bin := t.TempDir() + "/mmxd"
	build := exec.Command("go", "build", "-o", bin, "./cmd/mmxd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building mmxd: %v\n%s", err, out)
	}

	// Reserve a port, release it, and hand it to the daemon.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	daemon := exec.Command(bin, "-addr", addr, "-grace", "30s")
	var logs bytes.Buffer
	daemon.Stdout, daemon.Stderr = &logs, &logs
	if err := daemon.Start(); err != nil {
		t.Fatalf("starting mmxd: %v", err)
	}
	defer daemon.Process.Kill()

	base := "http://" + addr
	waitHealthy := func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
	deadline := time.Now().Add(10 * time.Second)
	for !waitHealthy() {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy\n%s", logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One warm-up run end to end through the real daemon.
	resp, err := http.Post(base+"/run", "application/json",
		strings.NewReader(`{"program":"fir.mmx","skip_check":true}`))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon run: status %d: %s", resp.StatusCode, body)
	}

	// Put a slower request in flight, then SIGTERM under it.
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/run", "application/json",
			strings.NewReader(`{"program":"jpeg.c","skip_check":true}`))
		if err != nil {
			inflight <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	started := func() bool {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var m server.MetricsSnapshot
		if json.NewDecoder(resp.Body).Decode(&m) != nil {
			return false
		}
		return m.ActiveRuns >= 1
	}
	deadline = time.Now().Add(5 * time.Second)
	for !started() {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight run never started\n%s", logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	// The admitted request must complete despite the drain.
	select {
	case status := <-inflight:
		if status != http.StatusOK {
			t.Errorf("in-flight run during drain: status %d\n%s", status, logs.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly: %v\n%s", err, logs.String())
	}
	if !strings.Contains(logs.String(), "drained cleanly") {
		t.Errorf("daemon logs missing drain confirmation:\n%s", logs.String())
	}
}

// TestResultCacheServesIdenticalBytes sweeps every suite program in every
// dispatch mode twice through a result-caching daemon: the replay must be
// byte-identical to the first response, marked as a cache hit, and must
// not re-execute the simulation.
func TestResultCacheServesIdenticalBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("full 21x4 sweep served twice; skipped in -short mode")
	}
	srv := server.New(server.Config{}) // result cache on by default
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	benches := suite.All()
	modes := []string{core.DispatchTrace, core.DispatchBlock, core.DispatchPredecode, core.DispatchGeneric}

	fetch := func(name, mode string) (*http.Response, []byte) {
		body := fmt.Sprintf(`{"program":%q,"dispatch":%q,"skip_check":true}`, name, mode)
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s/%s: %v", name, mode, err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	for _, mode := range modes {
		for _, bench := range benches {
			name := bench.Name()
			resp1, body1 := fetch(name, mode)
			if resp1.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: status %d: %s", name, mode, resp1.StatusCode, body1)
			}
			if got := resp1.Header.Get(server.ResultCacheHeader); got != "miss" {
				t.Errorf("%s/%s: first response cache header %q, want miss", name, mode, got)
			}
			resp2, body2 := fetch(name, mode)
			if resp2.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: replay status %d", name, mode, resp2.StatusCode)
			}
			if got := resp2.Header.Get(server.ResultCacheHeader); got != "hit" {
				t.Errorf("%s/%s: replay cache header %q, want hit", name, mode, got)
			}
			if !bytes.Equal(body1, body2) {
				t.Errorf("%s/%s: replayed bytes differ from the first execution", name, mode)
			}
			if e1, e2 := resp1.Header.Get("ETag"), resp2.Header.Get("ETag"); e1 == "" || e1 != e2 {
				t.Errorf("%s/%s: ETags %q vs %q, want one stable tag", name, mode, e1, e2)
			}
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	want := int64(len(benches) * len(modes))
	if m.RunsOK != want {
		t.Errorf("runs_ok = %d, want %d (replays must not execute)", m.RunsOK, want)
	}
	if m.ResultHits != uint64(want) || m.ResultMisses != uint64(want) {
		t.Errorf("result cache hits/misses = %d/%d, want %d/%d", m.ResultHits, m.ResultMisses, want, want)
	}
}

// TestDaemonResultCacheSpillSurvivesRestart exercises the persistent spill
// tier against the real binary: run the daemon with -result-cache-dir,
// serve one request, restart the process over the same directory, and the
// replay must come back byte-identical from the spill tier — without
// re-simulating.
func TestDaemonResultCacheSpillSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary twice; skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := tmp + "/mmxd"
	build := exec.Command("go", "build", "-o", bin, "./cmd/mmxd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building mmxd: %v\n%s", err, out)
	}
	spillDir := tmp + "/results"
	if err := os.MkdirAll(spillDir, 0o755); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	startDaemon := func() (*exec.Cmd, *bytes.Buffer) {
		t.Helper()
		daemon := exec.Command(bin, "-addr", addr, "-result-cache-dir", spillDir, "-grace", "30s")
		var logs bytes.Buffer
		daemon.Stdout, daemon.Stderr = &logs, &logs
		if err := daemon.Start(); err != nil {
			t.Fatalf("starting mmxd: %v", err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return daemon, &logs
				}
			}
			if time.Now().After(deadline) {
				daemon.Process.Kill()
				t.Fatalf("daemon never became healthy\n%s", logs.String())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	run := func() (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/run", "application/json",
			strings.NewReader(`{"program":"fir.mmx","dispatch":"block","skip_check":true}`))
		if err != nil {
			t.Fatalf("POST /run: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run: status %d: %s", resp.StatusCode, data)
		}
		return resp, data
	}

	first, _ := startDaemon()
	defer first.Process.Kill()
	resp1, body1 := run()
	if got := resp1.Header.Get(server.ResultCacheHeader); got != "miss" {
		t.Errorf("cold run cache header = %q, want miss", got)
	}
	etag := resp1.Header.Get("ETag")
	if err := first.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := first.Wait(); err != nil {
		t.Fatalf("first daemon exited uncleanly: %v", err)
	}

	second, logs := startDaemon()
	defer second.Process.Kill()
	resp2, body2 := run()
	if got := resp2.Header.Get(server.ResultCacheHeader); got != "spill" {
		t.Errorf("post-restart cache header = %q, want spill\n%s", got, logs.String())
	}
	if !bytes.Equal(body1, body2) {
		t.Error("post-restart bytes differ from the pre-restart response")
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Errorf("post-restart ETag %q, want %q", got, etag)
	}

	// The restarted daemon must not have executed the benchmark.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m server.MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.RunsOK != 0 {
		t.Errorf("restarted daemon executed %d runs, want 0 (spill should answer)", m.RunsOK)
	}
	if m.ResultSpillHits != 1 {
		t.Errorf("result_cache_spill_hits = %d, want 1", m.ResultSpillHits)
	}
	second.Process.Signal(syscall.SIGTERM)
	second.Wait()
}
